package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/vclock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newMgr(t *testing.T, model Model) (*Manager, *vclock.Virtual) {
	t.Helper()
	clk := vclock.NewVirtual(epoch)
	m, err := NewManager(Config{
		Node:  mnet.MustParseAddr("10.0.0.1"),
		Clock: clk,
		Model: model,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, clk
}

// recorder builds a protocol that records every event it accepts.
type recorder struct {
	p   *Protocol
	mu  sync.Mutex
	got []event.Type
}

func newRecorder(t *testing.T, name string, tuple event.Tuple) *recorder {
	t.Helper()
	r := &recorder{p: NewProtocol(name)}
	r.p.SetTuple(tuple)
	h := NewHandler(name+"-h", event.Any, func(ctx *Context, ev *event.Event) error {
		r.mu.Lock()
		r.got = append(r.got, ev.Type)
		r.mu.Unlock()
		return nil
	})
	if err := r.p.AddHandler(h); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *recorder) events() []event.Type {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]event.Type(nil), r.got...)
}

func TestManagerValidation(t *testing.T) {
	if _, err := NewManager(Config{Node: mnet.Addr{}}); err == nil {
		t.Fatal("unspecified node accepted")
	}
	if _, err := NewManager(Config{Node: mnet.Broadcast}); err == nil {
		t.Fatal("broadcast node accepted")
	}
}

func TestAutoBindingFromTuples(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	prov := newRecorder(t, "provider", event.Tuple{Provided: []event.Type{event.TCOut}})
	req := newRecorder(t, "requirer", event.Tuple{Required: []event.Requirement{{Type: event.TCOut}}})
	if err := m.Deploy(prov.p); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy(req.p); err != nil {
		t.Fatal(err)
	}
	// Reflective view shows the derived binding.
	arch := m.CF().Arch()
	found := false
	for _, b := range arch.Bindings {
		if b.From == "provider" && b.To == "requirer" {
			found = true
		}
	}
	if !found {
		t.Fatalf("derived binding missing: %+v", arch.Bindings)
	}
	// Event flows provider -> requirer.
	env := &Env{} // emit through the protocol's own context
	_ = env
	prov.p.Start()
	req.p.Start()
	emitFrom(t, m, "provider", &event.Event{Type: event.TCOut})
	if got := req.events(); len(got) != 1 || got[0] != event.TCOut {
		t.Fatalf("requirer got %v", got)
	}
	if got := prov.events(); len(got) != 0 {
		t.Fatalf("provider received its own event: %v", got)
	}
}

// emitFrom emits an event from the named deployed unit.
func emitFrom(t *testing.T, m *Manager, from string, ev *event.Event) {
	t.Helper()
	m.emit(from, ev)
	m.WaitIdle()
}

func TestBroadcastFanOut(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	prov := newRecorder(t, "sys", event.Tuple{Provided: []event.Type{event.HelloIn}})
	r1 := newRecorder(t, "p1", event.Tuple{Required: []event.Requirement{{Type: event.HelloIn}}})
	r2 := newRecorder(t, "p2", event.Tuple{Required: []event.Requirement{{Type: event.MsgIn}}}) // abstract
	for _, u := range []*Protocol{prov.p, r1.p, r2.p} {
		if err := m.Deploy(u); err != nil {
			t.Fatal(err)
		}
	}
	emitFrom(t, m, "sys", &event.Event{Type: event.HelloIn})
	if len(r1.events()) != 1 {
		t.Fatalf("p1 got %v", r1.events())
	}
	if len(r2.events()) != 1 {
		t.Fatal("abstract (ontology) requirement did not receive concrete subtype")
	}
}

func TestExclusiveReceive(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	prov := newRecorder(t, "sys", event.Tuple{Provided: []event.Type{event.NoRoute}})
	excl := newRecorder(t, "dymo", event.Tuple{Required: []event.Requirement{{Type: event.NoRoute, Exclusive: true}}})
	other := newRecorder(t, "snoop", event.Tuple{Required: []event.Requirement{{Type: event.NoRoute}}})
	for _, u := range []*Protocol{prov.p, excl.p, other.p} {
		if err := m.Deploy(u); err != nil {
			t.Fatal(err)
		}
	}
	emitFrom(t, m, "sys", &event.Event{Type: event.NoRoute})
	if len(excl.events()) != 1 {
		t.Fatal("exclusive requirer did not receive event")
	}
	if len(other.events()) != 0 {
		t.Fatal("exclusive receive leaked to another requirer")
	}
}

func TestInterposition(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	olsr := newRecorder(t, "olsr", event.Tuple{Provided: []event.Type{event.TCOut}})
	sys := newRecorder(t, "sys", event.Tuple{Required: []event.Requirement{{Type: event.MsgOut}}})

	// Fisheye-style interposer: provides AND requires TC_OUT, rewrites the
	// hop limit and re-emits.
	fish := NewProtocol("fisheye")
	fish.SetTuple(event.Tuple{
		Required: []event.Requirement{{Type: event.TCOut}},
		Provided: []event.Type{event.TCOut},
	})
	var sawInInterposer int
	fish.AddHandler(NewHandler("fish-h", event.TCOut, func(ctx *Context, ev *event.Event) error {
		sawInInterposer++
		out := *ev
		out.Device = "rewritten"
		ctx.Emit(&out)
		return nil
	}))

	for _, u := range []*Protocol{olsr.p, sys.p, fish} {
		if err := m.Deploy(u); err != nil {
			t.Fatal(err)
		}
	}
	inter, terms := m.Chain(event.TCOut)
	if len(inter) != 1 || inter[0] != "fisheye" {
		t.Fatalf("interposers = %v", inter)
	}
	if len(terms) != 1 || terms[0] != "sys" {
		t.Fatalf("terminals = %v", terms)
	}

	var sysGot []*event.Event
	sysH := NewHandler("sys-capture", event.TCOut, func(ctx *Context, ev *event.Event) error {
		sysGot = append(sysGot, ev)
		return nil
	})
	if err := sys.p.AddHandler(sysH); err != nil {
		t.Fatal(err)
	}

	emitFrom(t, m, "olsr", &event.Event{Type: event.TCOut})
	if sawInInterposer != 1 {
		t.Fatalf("interposer saw %d events", sawInInterposer)
	}
	if len(sysGot) != 1 || sysGot[0].Device != "rewritten" {
		t.Fatalf("terminal got %d events, modified=%v", len(sysGot), sysGot)
	}
	// No loop: the interposer's own emission did not come back to it.
	if sawInInterposer != 1 {
		t.Fatal("interposition looped")
	}
}

func TestInterposerCanDropEvents(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	src := newRecorder(t, "src", event.Tuple{Provided: []event.Type{event.TCOut}})
	sink := newRecorder(t, "sink", event.Tuple{Required: []event.Requirement{{Type: event.TCOut}}})
	filter := NewProtocol("filter")
	filter.SetTuple(event.Tuple{
		Required: []event.Requirement{{Type: event.TCOut}},
		Provided: []event.Type{event.TCOut},
	})
	filter.AddHandler(NewHandler("drop-all", event.TCOut, func(ctx *Context, ev *event.Event) error {
		return nil // swallow
	}))
	for _, u := range []*Protocol{src.p, sink.p, filter} {
		if err := m.Deploy(u); err != nil {
			t.Fatal(err)
		}
	}
	emitFrom(t, m, "src", &event.Event{Type: event.TCOut})
	if len(sink.events()) != 0 {
		t.Fatal("dropped event reached terminal")
	}
}

func TestInterposerChainOrderFollowsDeployment(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	src := newRecorder(t, "src", event.Tuple{Provided: []event.Type{event.TCOut}})
	sink := newRecorder(t, "sink", event.Tuple{Required: []event.Requirement{{Type: event.TCOut}}})
	var order []string
	mkInter := func(name string) *Protocol {
		p := NewProtocol(name)
		p.SetTuple(event.Tuple{
			Required: []event.Requirement{{Type: event.TCOut}},
			Provided: []event.Type{event.TCOut},
		})
		p.AddHandler(NewHandler(name+"-h", event.TCOut, func(ctx *Context, ev *event.Event) error {
			order = append(order, name)
			ctx.Emit(ev)
			return nil
		}))
		return p
	}
	i1, i2 := mkInter("inter1"), mkInter("inter2")
	for _, u := range []*Protocol{src.p, i1, i2, sink.p} {
		if err := m.Deploy(u); err != nil {
			t.Fatal(err)
		}
	}
	emitFrom(t, m, "src", &event.Event{Type: event.TCOut})
	if len(order) != 2 || order[0] != "inter1" || order[1] != "inter2" {
		t.Fatalf("interposer order = %v", order)
	}
	if len(sink.events()) != 1 {
		t.Fatalf("sink got %v", sink.events())
	}
}

func TestDeclarativeRewireOnSetTuple(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	src := newRecorder(t, "src", event.Tuple{Provided: []event.Type{event.TCOut}})
	sink := newRecorder(t, "sink", event.Tuple{})
	if err := m.Deploy(src.p); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy(sink.p); err != nil {
		t.Fatal(err)
	}
	emitFrom(t, m, "src", &event.Event{Type: event.TCOut})
	if len(sink.events()) != 0 {
		t.Fatal("event delivered without requirement")
	}
	// Declarative reconfiguration: update the tuple, topology follows.
	sink.p.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.TCOut}}})
	emitFrom(t, m, "src", &event.Event{Type: event.TCOut})
	if len(sink.events()) != 1 {
		t.Fatalf("rewire did not take effect: %v", sink.events())
	}
}

func TestUndeployRemovesFromTopology(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	src := newRecorder(t, "src", event.Tuple{Provided: []event.Type{event.TCOut}})
	sink := newRecorder(t, "sink", event.Tuple{Required: []event.Requirement{{Type: event.TCOut}}})
	if err := m.Deploy(src.p); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy(sink.p); err != nil {
		t.Fatal(err)
	}
	if err := m.Undeploy("sink"); err != nil {
		t.Fatal(err)
	}
	emitFrom(t, m, "src", &event.Event{Type: event.TCOut})
	if len(sink.events()) != 0 {
		t.Fatal("undeployed unit received event")
	}
	if len(m.Units()) != 1 {
		t.Fatalf("Units = %v", m.Units())
	}
	if err := m.Undeploy("sink"); err == nil {
		t.Fatal("double undeploy succeeded")
	}
	// Duplicate deployment rejected.
	dupe := newRecorder(t, "src", event.Tuple{})
	if err := m.Deploy(dupe.p); err == nil {
		t.Fatal("duplicate unit name accepted")
	}
}

func TestHandlerDemuxMatchesPattern(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	p := NewProtocol("p")
	p.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.MsgIn}}})
	var hello, tc, all int
	p.AddHandler(NewHandler("hello-h", event.HelloIn, func(*Context, *event.Event) error { hello++; return nil }))
	p.AddHandler(NewHandler("tc-h", event.TCIn, func(*Context, *event.Event) error { tc++; return nil }))
	p.AddHandler(NewHandler("all-h", event.MsgIn, func(*Context, *event.Event) error { all++; return nil }))
	src := newRecorder(t, "src", event.Tuple{Provided: []event.Type{event.HelloIn, event.TCIn}})
	if err := m.Deploy(src.p); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy(p); err != nil {
		t.Fatal(err)
	}
	emitFrom(t, m, "src", &event.Event{Type: event.HelloIn})
	emitFrom(t, m, "src", &event.Event{Type: event.TCIn})
	if hello != 1 || tc != 1 || all != 2 {
		t.Fatalf("demux counts hello=%d tc=%d all=%d", hello, tc, all)
	}
	st := p.Stats()
	if st.Delivered != 2 || st.Handled != 4 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestHandlerErrorsAreAggregated(t *testing.T) {
	p := NewProtocol("p")
	p.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.HelloIn}}})
	sentinel := errors.New("boom")
	p.AddHandler(NewHandler("bad", event.HelloIn, func(*Context, *event.Event) error { return sentinel }))
	p.Attach(&Env{Node: mnet.MustParseAddr("10.0.0.1"), Clock: vclock.NewVirtual(epoch), Ontology: event.NewOntology()})
	err := p.Accept(&event.Event{Type: event.HelloIn})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Accept = %v", err)
	}
	if p.Stats().Errors != 1 {
		t.Fatalf("Stats = %+v", p.Stats())
	}
}

func TestProtocolLifecycleAndSources(t *testing.T) {
	m, clk := newMgr(t, SingleThreaded)
	p := NewProtocol("beacon")
	p.SetTuple(event.Tuple{Provided: []event.Type{event.HelloOut}})
	var fired int
	p.AddSource(NewSource("hello-gen", 10*time.Millisecond, 0, func(ctx *Context) {
		fired++
		ctx.Emit(&event.Event{Type: event.HelloOut})
	}))
	var inited, started, stopped bool
	p.OnInit(func(*Context) error { inited = true; return nil })
	p.OnStart(func(*Context) error { started = true; return nil })
	p.OnStop(func(*Context) error { stopped = true; return nil })

	if err := p.Start(); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("Start undeployed = %v", err)
	}
	if err := m.Deploy(p); err != nil {
		t.Fatal(err)
	}
	if err := p.Init(); err != nil || !inited {
		t.Fatalf("Init: %v, inited=%v", err, inited)
	}
	if err := p.Start(); err != nil || !started {
		t.Fatalf("Start: %v", err)
	}
	clk.Advance(35 * time.Millisecond)
	if fired != 3 {
		t.Fatalf("source fired %d times", fired)
	}
	p.Stop()
	if !stopped {
		t.Fatal("stop hook not run")
	}
	clk.Advance(50 * time.Millisecond)
	if fired != 3 {
		t.Fatal("source fired after Stop")
	}
	// Restart works.
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Millisecond)
	if fired != 4 {
		t.Fatalf("source did not resume: %d", fired)
	}
}

func TestSourceAddedWhileRunningStarts(t *testing.T) {
	m, clk := newMgr(t, SingleThreaded)
	p := NewProtocol("p")
	p.SetTuple(event.Tuple{})
	if err := m.Deploy(p); err != nil {
		t.Fatal(err)
	}
	p.Start()
	var n int
	p.AddSource(NewSource("late", 5*time.Millisecond, 0, func(*Context) { n++ }))
	clk.Advance(11 * time.Millisecond)
	if n != 2 {
		t.Fatalf("late source fired %d", n)
	}
	if err := p.RemoveSource("late"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(20 * time.Millisecond)
	if n != 2 {
		t.Fatal("removed source still firing")
	}
}

func TestReplaceHandlerUnderQuiescence(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	p := NewProtocol("dymo")
	p.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.REIn}}})
	var v1, v2 int
	p.AddHandler(NewHandler("re-handler", event.REIn, func(*Context, *event.Event) error { v1++; return nil }))
	src := newRecorder(t, "src", event.Tuple{Provided: []event.Type{event.REIn}})
	m.Deploy(src.p)
	m.Deploy(p)
	emitFrom(t, m, "src", &event.Event{Type: event.REIn})
	// Swap in the multipath RE handler.
	if err := p.ReplaceHandler("re-handler", NewHandler("re-handler-mp", event.REIn,
		func(*Context, *event.Event) error { v2++; return nil })); err != nil {
		t.Fatal(err)
	}
	emitFrom(t, m, "src", &event.Event{Type: event.REIn})
	if v1 != 1 || v2 != 1 {
		t.Fatalf("v1=%d v2=%d", v1, v2)
	}
}

func TestStateCarryOver(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	old := NewProtocol("proto-v1")
	stateComp := NewStateComponent("state", map[string]int{"routes": 7})
	if err := old.SetState(stateComp); err != nil {
		t.Fatal(err)
	}
	m.Deploy(old)
	// Replace protocol, carrying the S component over (§4.5).
	detached, err := old.DetachState()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Undeploy("proto-v1"); err != nil {
		t.Fatal(err)
	}
	repl := NewProtocol("proto-v2")
	if err := repl.SetState(detached); err != nil {
		t.Fatal(err)
	}
	m.Deploy(repl)
	got, ok := StateValue[map[string]int](repl)
	if !ok || got["routes"] != 7 {
		t.Fatalf("carried state = %v, %v", got, ok)
	}
}

func TestIntegrityTwoStateElementsRejected(t *testing.T) {
	p := NewProtocol("p")
	if err := p.SetState(NewStateComponent("state", 1)); err != nil {
		t.Fatal(err)
	}
	// SetState replaces; direct CF insert of a second "state" must fail.
	err := p.CF().Insert(NewStateComponent("state", 2))
	if err == nil {
		t.Fatal("second state element accepted by CF")
	}
	// Misnamed element rejected by SetState.
	if err := p.SetForward(NewStateComponent("state", 3)); err == nil {
		t.Fatal("misnamed forward element accepted")
	}
}

func TestContextConcentrator(t *testing.T) {
	m, clk := newMgr(t, SingleThreaded)
	src := newRecorder(t, "sensor", event.Tuple{Provided: []event.Type{event.PowerStatus}})
	m.Deploy(src.p)
	var got []*event.Event
	m.SubscribeContext(event.Context, func(ev *event.Event) { got = append(got, ev) })
	emitFrom(t, m, "sensor", &event.Event{Type: event.PowerStatus, Power: &event.PowerPayload{Fraction: 0.5}})
	if len(got) != 1 || got[0].Power.Fraction != 0.5 {
		t.Fatalf("concentrator got %v", got)
	}
	// Poll-based source hidden behind the facade.
	m.AddContextPoller(20*time.Millisecond, func() *event.Event {
		return &event.Event{Type: event.SysStatus, Sys: &event.SysPayload{CPUFraction: 0.9}}
	})
	clk.Advance(45 * time.Millisecond)
	if len(got) != 3 {
		t.Fatalf("poller contributed %d events", len(got)-1)
	}
}

func TestQuiesceBlocksDelivery(t *testing.T) {
	m, _ := newMgr(t, PerMessage)
	sink := newRecorder(t, "sink", event.Tuple{Required: []event.Requirement{{Type: event.TCOut}}})
	src := newRecorder(t, "src", event.Tuple{Provided: []event.Type{event.TCOut}})
	m.Deploy(src.p)
	m.Deploy(sink.p)

	resume := m.Quiesce()
	m.emit("src", &event.Event{Type: event.TCOut}) // shepherd goroutine blocks on section
	time.Sleep(10 * time.Millisecond)
	if len(sink.events()) != 0 {
		t.Fatal("delivery proceeded during quiescence")
	}
	resume()
	m.WaitIdle()
	if len(sink.events()) != 1 {
		t.Fatalf("delivery lost after resume: %v", sink.events())
	}
}
