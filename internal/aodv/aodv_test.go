package aodv

import (
	"sync"
	"testing"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/emunet"
	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/neighbor"
	"manetkit/internal/testbed"
)

// aodvNode bundles the per-node composition.
type aodvNode struct {
	node *testbed.Node
	nd   *neighbor.Detector
	aodv *AODV
}

func deployAODV(t *testing.T, n int, cfg Config) (*testbed.Cluster, []*aodvNode) {
	t.Helper()
	c, err := testbed.New(n, testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	nodes := make([]*aodvNode, n)
	for i, node := range c.Nodes {
		nd := neighbor.New("", neighbor.Config{HelloInterval: time.Second, LinkLayerFeedback: true})
		cfg := cfg
		cfg.Clock = c.Clock
		cfg.FIB = node.FIB()
		cfg.Device = node.Sys.NIC().Device()
		a := New("", nd, cfg)
		for _, u := range []*core.Protocol{nd.Protocol(), a.Protocol()} {
			if err := node.Mgr.Deploy(u); err != nil {
				t.Fatal(err)
			}
			if err := u.Start(); err != nil {
				t.Fatal(err)
			}
		}
		nodes[i] = &aodvNode{node: node, nd: nd, aodv: a}
	}
	return c, nodes
}

func TestDiscoveryOnLine(t *testing.T) {
	c, nodes := deployAODV(t, 5, Config{})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Second)

	var mu sync.Mutex
	delivered := 0
	nodes[4].node.Sys.Filter().OnDeliver(func(mnet.Addr, []byte) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	if err := nodes[0].node.Sys.Filter().SendData(c.Addrs()[4], []byte("ping")); err != nil {
		t.Fatal(err)
	}
	// 4 hops > TTLStart(2): the expanding ring must widen at least once.
	c.Run(5 * time.Second)

	mu.Lock()
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
	mu.Unlock()
	_, p, err := nodes[0].aodv.Routes().Lookup(c.Addrs()[4])
	if err != nil || p.Metric != 4 || p.NextHop != c.Addrs()[1] {
		t.Fatalf("route = %+v, %v", p, err)
	}
	st := nodes[0].aodv.State().Stats()
	if st.Discoveries != 1 || st.RingExpansions == 0 {
		t.Fatalf("stats = %+v (expected an expanding-ring widening)", st)
	}
}

func TestExpandingRingStopsEarlyForNearTargets(t *testing.T) {
	c, nodes := deployAODV(t, 3, Config{})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Second)
	// Target 2 hops away: within TTLStart, no expansion needed.
	if err := nodes[0].node.Sys.Filter().SendData(c.Addrs()[2], []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.Run(2 * time.Second)
	st := nodes[0].aodv.State().Stats()
	if st.RingExpansions != 0 || st.Retries != 0 {
		t.Fatalf("near target should need no expansion: %+v", st)
	}
	if _, _, err := nodes[0].aodv.Routes().Lookup(c.Addrs()[2]); err != nil {
		t.Fatal("no route after discovery")
	}
}

func TestGratuitousRREPFromIntermediate(t *testing.T) {
	c, nodes := deployAODV(t, 4, Config{RouteLifetime: time.Minute})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Second)
	// Node 1 discovers node 3; node 2 (mid) now holds a fresh route to 3.
	nodes[1].node.Sys.Filter().SendData(c.Addrs()[3], []byte("warm"))
	c.Run(2 * time.Second)
	if _, _, err := nodes[2].aodv.Routes().Lookup(c.Addrs()[3]); err != nil {
		t.Fatal("setup: intermediate lacks route")
	}
	// Node 0 now discovers node 3: node 1 or 2 can answer gratuitously.
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[3], []byte("x"))
	c.Run(2 * time.Second)
	if _, _, err := nodes[0].aodv.Routes().Lookup(c.Addrs()[3]); err != nil {
		t.Fatal("discovery failed")
	}
	grat := nodes[1].aodv.State().Stats().GratuitousRREPs + nodes[2].aodv.State().Stats().GratuitousRREPs
	if grat == 0 {
		t.Fatal("no gratuitous RREP was sent")
	}
}

func TestDestinationOnlyDisablesGratuitousRREP(t *testing.T) {
	c, nodes := deployAODV(t, 4, Config{RouteLifetime: time.Minute, DestinationOnly: true})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Second)
	nodes[1].node.Sys.Filter().SendData(c.Addrs()[3], []byte("warm"))
	c.Run(2 * time.Second)
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[3], []byte("x"))
	c.Run(2 * time.Second)
	if _, _, err := nodes[0].aodv.Routes().Lookup(c.Addrs()[3]); err != nil {
		t.Fatal("discovery failed")
	}
	for i := 1; i <= 2; i++ {
		if g := nodes[i].aodv.State().Stats().GratuitousRREPs; g != 0 {
			t.Fatalf("node %d sent %d gratuitous RREPs despite destination-only", i, g)
		}
	}
}

func TestPiggybackTeachesNeighbors(t *testing.T) {
	c, nodes := deployAODV(t, 4, Config{RouteLifetime: time.Minute, PiggybackRoutes: true})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Second)
	// Node 1 discovers a route to node 3.
	nodes[1].node.Sys.Filter().SendData(c.Addrs()[3], []byte("warm"))
	c.Run(2 * time.Second)
	// Within a couple of beacon intervals node 0 learns 3 via 1's HELLO
	// piggyback — without ever discovering.
	c.Run(4 * time.Second)
	if _, p, err := nodes[0].aodv.Routes().Lookup(c.Addrs()[3]); err != nil || p.NextHop != c.Addrs()[1] {
		t.Fatalf("piggybacked route = %+v, %v", p, err)
	}
	if nodes[0].aodv.State().Stats().Discoveries != 0 {
		t.Fatal("node 0 should not have needed a discovery")
	}
	if nodes[0].aodv.State().Stats().PiggybackLearned == 0 {
		t.Fatal("piggyback counter not incremented")
	}
}

func TestPrecursorRERRPropagates(t *testing.T) {
	c, nodes := deployAODV(t, 4, Config{RouteLifetime: time.Minute})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Second)
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[3], []byte("warm"))
	c.Run(2 * time.Second)
	if _, _, err := nodes[0].aodv.Routes().Lookup(c.Addrs()[3]); err != nil {
		t.Fatal("setup: no route")
	}
	// Break 2-3; transit traffic triggers MAC feedback at node 2, which
	// unicasts a RERR to its precursor (node 1), which forwards to node 0.
	c.Net.CutLink(c.Addrs()[2], c.Addrs()[3])
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[3], []byte("probe"))
	c.Run(time.Second)
	for i := 0; i <= 2; i++ {
		if _, _, err := nodes[i].aodv.Routes().Lookup(c.Addrs()[3]); err == nil {
			t.Fatalf("node %d kept the broken route", i)
		}
	}
	if nodes[2].aodv.State().Stats().RERRSent == 0 {
		t.Fatal("node 2 sent no RERR")
	}
}

func TestSingleReactiveIntegrityRule(t *testing.T) {
	c, err := testbed.New(1, testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	node := c.Nodes[0]
	if err := node.Mgr.AddRule(RuleSingleReactive("aodv", "dymo")); err != nil {
		t.Fatal(err)
	}
	a := New("aodv", nil, Config{Clock: c.Clock})
	if err := node.Mgr.Deploy(a.Protocol()); err != nil {
		t.Fatal(err)
	}
	// A second reactive protocol is rejected by the integrity rule.
	b := New("dymo", nil, Config{Clock: c.Clock})
	if err := node.Mgr.Deploy(b.Protocol()); err == nil {
		t.Fatal("second reactive protocol accepted")
	}
	// The violating deployment rolled back cleanly.
	units := node.Mgr.Units()
	for _, u := range units {
		if u == "dymo" {
			t.Fatalf("rollback failed: %v", units)
		}
	}
	// After removing AODV, DYMO deploys fine.
	if err := node.Mgr.Undeploy("aodv"); err != nil {
		t.Fatal(err)
	}
	if err := node.Mgr.Deploy(b.Protocol()); err != nil {
		t.Fatalf("replacement reactive protocol rejected: %v", err)
	}
}

func TestGiveUpUnreachable(t *testing.T) {
	c, nodes := deployAODV(t, 2, Config{RREQWait: 100 * time.Millisecond, RREQTries: 2,
		TTLStart: 2, TTLIncrement: 2, TTLThreshold: 4, NetDiameter: 8})
	// No links.
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[1], []byte("x"))
	c.Run(5 * time.Second)
	st := nodes[0].aodv.State().Stats()
	if st.GiveUps != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSeqNewerWraparound(t *testing.T) {
	if !seqNewer(2, 1) || seqNewer(1, 2) || seqNewer(3, 3) || !seqNewer(1, 65000) {
		t.Fatal("seqNewer broken")
	}
}

func TestRoutesExpireWithoutUse(t *testing.T) {
	c, nodes := deployAODV(t, 2, Config{RouteLifetime: 2 * time.Second})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[1], []byte("x"))
	c.Run(500 * time.Millisecond)
	if _, _, err := nodes[0].aodv.Routes().Lookup(c.Addrs()[1]); err != nil {
		t.Fatal("no route after discovery")
	}
	c.Run(5 * time.Second)
	if _, _, err := nodes[0].aodv.Routes().Lookup(c.Addrs()[1]); err == nil {
		t.Fatal("idle route never expired")
	}
}

func TestCompositionHasExpectedPlugins(t *testing.T) {
	c, nodes := deployAODV(t, 1, Config{})
	_ = c
	for _, name := range []string{
		"control", "state", "re-handler", "rerr-handler", "noroute-handler",
		"routeupdate-handler", "senderr-handler", "linkbreak-handler",
		"nhood-handler", "route-sweep",
	} {
		if _, ok := nodes[0].aodv.Protocol().CF().Plug(name); !ok {
			t.Errorf("AODV CF missing %q", name)
		}
	}
	_, terms := nodes[0].node.Mgr.Chain(event.NoRoute)
	if len(terms) != 1 || terms[0] != "aodv" {
		t.Fatalf("NO_ROUTE terminals = %v", terms)
	}
}

func TestAODVWorksUnderLoss(t *testing.T) {
	// Failure injection: 15% frame loss; retries still find the route.
	c, err := testbed.New(3, testbed.Options{
		Seed:        7,
		LinkQuality: emunet.Quality{Delay: 1500 * time.Microsecond, Loss: 0.15, SignalDBm: -70},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	nodes := make([]*aodvNode, 3)
	for i, node := range c.Nodes {
		nd := neighbor.New("", neighbor.Config{HelloInterval: time.Second})
		a := New("", nd, Config{Clock: c.Clock, FIB: node.FIB(), RREQWait: 300 * time.Millisecond})
		for _, u := range []*core.Protocol{nd.Protocol(), a.Protocol()} {
			if err := node.Mgr.Deploy(u); err != nil {
				t.Fatal(err)
			}
			if err := u.Start(); err != nil {
				t.Fatal(err)
			}
		}
		nodes[i] = &aodvNode{node: node, nd: nd, aodv: a}
	}
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Second)
	var mu sync.Mutex
	delivered := 0
	nodes[2].node.Sys.Filter().OnDeliver(func(mnet.Addr, []byte) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	// Several attempts; loss may eat some data frames but discovery should
	// succeed and most packets arrive.
	for i := 0; i < 5; i++ {
		nodes[0].node.Sys.Filter().SendData(c.Addrs()[2], []byte("x"))
		c.Run(2 * time.Second)
	}
	mu.Lock()
	defer mu.Unlock()
	if delivered < 2 {
		t.Fatalf("delivered %d/5 under 15%% loss", delivered)
	}
}
