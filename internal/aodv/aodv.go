// Package aodv implements the Ad-hoc On-demand Distance Vector protocol
// (RFC 3561) as a MANETKit composition. AODV was the first protocol built
// on MANETKit (§5: the Java proof of concept), and §4.3 singles it out as
// the protocol that piggybacks routing-table entries on the Neighbour
// Detection CF's beacons "so that neighbours can learn new routes" — this
// implementation does exactly that through the detector's piggyback
// service.
//
// Distinguishing features versus the bundled DYMO:
//
//   - expanding ring search: discovery starts with a small RREQ TTL and
//     widens it on retry (RFC 3561 §6.4);
//   - intermediate (gratuitous) RREPs: a node with a fresh-enough route to
//     the target answers on the destination's behalf;
//   - precursor lists: RERRs are unicast to the upstream nodes actually
//     using the broken route rather than broadcast blindly.
package aodv

import (
	"sort"
	"sync"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/kernel"
	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/neighbor"
	"manetkit/internal/packetbb"
	"manetkit/internal/route"
	"manetkit/internal/vclock"
)

// UnitName is the AODV CF's default unit name.
const UnitName = "aodv"

// PiggybackTLV is the HELLO message TLV carrying piggybacked routing
// entries (§4.3): pairs of (destination address, u16 metric-and-seq).
const PiggybackTLV uint8 = 120

// Message TLV types private to AODV (beyond the shared packetbb set).
const (
	tlvOrigSeq  uint8 = 64 // originator sequence number on RREQ (u16)
	tlvDestOnly uint8 = 65 // flag: only the destination may answer
)

// Config parameterises the AODV CF.
type Config struct {
	// RouteLifetime is the active-route validity (default 5s).
	RouteLifetime time.Duration
	// RREQWait is the per-attempt reply wait (default 1s).
	RREQWait time.Duration
	// RREQTries bounds discovery attempts (default 3).
	RREQTries int
	// TTLStart, TTLIncrement and TTLThreshold drive the expanding ring
	// search (defaults 2, 2, 7); beyond the threshold NetDiameter is used.
	TTLStart     uint8
	TTLIncrement uint8
	TTLThreshold uint8
	// NetDiameter caps full-network floods (default 16).
	NetDiameter uint8
	// DestinationOnly disables intermediate RREPs (default false).
	DestinationOnly bool
	// PiggybackRoutes shares up to PiggybackMax routing entries on the
	// neighbour detector's HELLO beacons (§4.3).
	PiggybackRoutes bool
	PiggybackMax    int
	// FIB, when non-nil, receives the protocol's routes.
	FIB *route.FIB
	// Device names the FIB device for installed routes.
	Device string
	// Clock drives route lifetimes before deployment (defaults to real).
	Clock vclock.Clock
}

func (c *Config) fill() {
	if c.RouteLifetime <= 0 {
		c.RouteLifetime = 5 * time.Second
	}
	if c.RREQWait <= 0 {
		c.RREQWait = time.Second
	}
	if c.RREQTries <= 0 {
		c.RREQTries = 3
	}
	if c.TTLStart == 0 {
		c.TTLStart = 2
	}
	if c.TTLIncrement == 0 {
		c.TTLIncrement = 2
	}
	if c.TTLThreshold == 0 {
		c.TTLThreshold = 7
	}
	if c.NetDiameter == 0 {
		c.NetDiameter = 16
	}
	if c.PiggybackMax <= 0 {
		c.PiggybackMax = 4
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
}

// pending tracks one discovery with its expanding-ring state.
type pending struct {
	tries   int
	ttl     uint8
	timer   vclock.Timer
	started time.Time // virtual-clock discovery start, for the latency histogram
}

type dupKey struct {
	orig mnet.Addr
	seq  uint16
}

// Stats counts AODV activity.
type Stats struct {
	Discoveries      uint64
	Retries          uint64
	GiveUps          uint64
	RingExpansions   uint64 // retries that widened the search ring
	RREQForwards     uint64
	RREPSent         uint64
	GratuitousRREPs  uint64 // intermediate replies on the target's behalf
	RERRSent         uint64
	PiggybackLearned uint64 // routes learned from HELLO piggybacks
}

// State is the AODV CF's S element: route table, own sequence number,
// pending discoveries, duplicate cache and precursor lists.
type State struct {
	Routes *route.Table

	mu         sync.Mutex
	seq        uint16
	pending    map[mnet.Addr]*pending
	dupes      map[dupKey]time.Time
	precursors map[mnet.Addr]map[mnet.Addr]bool // dst -> upstream users
	stats      Stats
}

// NewState returns an empty AODV state.
func NewState(routes *route.Table) *State {
	return &State{
		Routes:     routes,
		pending:    make(map[mnet.Addr]*pending),
		dupes:      make(map[dupKey]time.Time),
		precursors: make(map[mnet.Addr]map[mnet.Addr]bool),
	}
}

// NextSeq increments and returns the node's sequence number.
func (s *State) NextSeq() uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	if s.seq == 0 {
		s.seq = 1
	}
	return s.seq
}

// Stats returns a snapshot of the protocol counters.
func (s *State) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *State) bump(fn func(*Stats)) {
	s.mu.Lock()
	fn(&s.stats)
	s.mu.Unlock()
}

func (s *State) seenDup(k dupKey, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, dup := s.dupes[k]
	s.dupes[k] = now
	return dup
}

// addPrecursor records that upstream uses this node to reach dst.
func (s *State) addPrecursor(dst, upstream mnet.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.precursors[dst]
	if set == nil {
		set = make(map[mnet.Addr]bool)
		s.precursors[dst] = set
	}
	set[upstream] = true
}

// takePrecursors removes and returns dst's precursor list, sorted.
func (s *State) takePrecursors(dst mnet.Addr) []mnet.Addr {
	s.mu.Lock()
	set := s.precursors[dst]
	delete(s.precursors, dst)
	s.mu.Unlock()
	out := make([]mnet.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// AODV is the AODV ManetProtocol CF.
type AODV struct {
	proto *core.Protocol
	state *State
	cfg   Config

	// Instruments, resolved from the deployment's registry on Start; nil
	// (no-op) when the deployment carries no metrics.
	mDiscoveries  *metrics.Counter
	mRetries      *metrics.Counter
	mGiveUps      *metrics.Counter
	mRREQTx       *metrics.Counter
	mDiscoveryLat *metrics.Histogram // virtual time: NoRoute -> RouteFound
}

// New builds an AODV CF. detector (optional) is the Neighbour Detection CF
// whose beacons carry the piggybacked routing entries.
func New(name string, detector *neighbor.Detector, cfg Config) *AODV {
	if name == "" {
		name = UnitName
	}
	cfg.fill()
	a := &AODV{proto: core.NewProtocol(name), cfg: cfg}
	rt := route.NewTable(cfg.Clock)
	if cfg.FIB != nil {
		rt.SyncFIB(cfg.FIB, cfg.Device)
	}
	a.state = NewState(rt)

	a.proto.SetTuple(event.Tuple{
		Required: []event.Requirement{
			{Type: event.REIn},
			{Type: event.RerrIn},
			{Type: event.NhoodChange},
			{Type: event.NoRoute, Exclusive: true},
			{Type: event.RouteUpdate},
			{Type: event.SendRouteErr},
			{Type: event.LinkBreak},
		},
		Provided: []event.Type{event.REOut, event.RerrOut, event.RouteFound},
	})
	if err := a.proto.SetState(core.NewStateComponent("state", a.state)); err != nil {
		panic(err)
	}
	a.proto.Provide("IAODVState", a.state)

	for _, h := range []core.Handler{
		core.NewHandler("re-handler", event.REIn, a.onRE),
		core.NewHandler("rerr-handler", event.RerrIn, a.onRERR),
		core.NewHandler("noroute-handler", event.NoRoute, a.onNoRoute),
		core.NewHandler("routeupdate-handler", event.RouteUpdate, a.onRouteUpdate),
		core.NewHandler("senderr-handler", event.SendRouteErr, a.onSendRouteErr),
		core.NewHandler("linkbreak-handler", event.LinkBreak, a.onLinkBreak),
		core.NewHandler("nhood-handler", event.NhoodChange, a.onNhood),
	} {
		if err := a.proto.AddHandler(h); err != nil {
			panic(err)
		}
	}
	if err := a.proto.AddSource(core.NewSource("route-sweep", cfg.RouteLifetime/2, 0, a.sweep)); err != nil {
		panic(err)
	}
	a.proto.OnStart(func(ctx *core.Context) error {
		reg := ctx.Env().Metrics()
		a.mDiscoveries = reg.Counter("aodv_discoveries")
		a.mRetries = reg.Counter("aodv_retries")
		a.mGiveUps = reg.Counter("aodv_giveups")
		a.mRREQTx = reg.Counter("aodv_rreq_tx")
		a.mDiscoveryLat = reg.Histogram("aodv_discovery_latency")
		return nil
	})
	a.proto.OnStop(func(ctx *core.Context) error {
		a.state.mu.Lock()
		for _, p := range a.state.pending {
			if p.timer != nil {
				p.timer.Stop()
			}
		}
		a.state.pending = make(map[mnet.Addr]*pending)
		a.state.mu.Unlock()
		a.state.Routes.Clear()
		return nil
	})
	if detector != nil && cfg.PiggybackRoutes {
		a.wirePiggyback(detector)
	}
	return a
}

// RuleSingleReactive builds the integrity rule from §4.2's example: at most
// one reactive routing protocol (AODV or DYMO) deployed at a time. Install
// it with Manager.AddRule.
func RuleSingleReactive(reactiveNames ...string) kernel.IntegrityRule {
	names := make(map[string]bool, len(reactiveNames))
	for _, n := range reactiveNames {
		names[n] = true
	}
	return kernel.RuleSingleton("reactive routing protocol", func(c string) bool {
		return names[c]
	})
}

// Protocol returns the AODV CF as a deployable unit.
func (a *AODV) Protocol() *core.Protocol { return a.proto }

// State returns the S element value.
func (a *AODV) State() *State { return a.state }

// Routes returns the protocol's routing table.
func (a *AODV) Routes() *route.Table { return a.state.Routes }

// wirePiggyback attaches the §4.3 dissemination service: outgoing HELLOs
// carry up to PiggybackMax of our freshest routes; incoming piggybacks
// teach one-extra-hop routes through the beaconing neighbour.
func (a *AODV) wirePiggyback(detector *neighbor.Detector) {
	detector.Piggyback(PiggybackTLV, func() []byte {
		entries := a.state.Routes.Entries()
		var buf []byte
		n := 0
		for _, e := range entries {
			if !e.Valid || n >= a.cfg.PiggybackMax {
				continue
			}
			p, ok := e.Best(a.cfg.Clock.Now())
			if !ok || p.Metric >= int(a.cfg.NetDiameter) {
				continue
			}
			buf = append(buf, e.Dst.Addr[:]...)
			buf = append(buf, byte(p.Metric))
			buf = append(buf, byte(e.SeqNum>>8), byte(e.SeqNum))
			n++
		}
		return buf
	})
	detector.OnPiggyback(PiggybackTLV, func(src mnet.Addr, value []byte) {
		const rec = mnet.AddrLen + 3
		_ = a.proto.RunLocked(func(ctx *core.Context) {
			for off := 0; off+rec <= len(value); off += rec {
				var dst mnet.Addr
				copy(dst[:], value[off:off+mnet.AddrLen])
				metric := int(value[off+mnet.AddrLen])
				seq := uint16(value[off+mnet.AddrLen+1])<<8 | uint16(value[off+mnet.AddrLen+2])
				if dst == ctx.Node() || dst == src {
					continue
				}
				if a.learnRoute(ctx, dst, src, metric+1, seq) {
					a.state.bump(func(st *Stats) { st.PiggybackLearned++ })
				}
			}
		})
	})
}

// onNoRoute starts an expanding-ring route discovery.
func (a *AODV) onNoRoute(ctx *core.Context, ev *event.Event) error {
	if ev.Route == nil {
		return nil
	}
	dst := ev.Route.Dst
	a.state.mu.Lock()
	_, already := a.state.pending[dst]
	if !already {
		a.state.pending[dst] = &pending{ttl: a.cfg.TTLStart, started: ctx.Clock().Now()}
		a.state.stats.Discoveries++
	}
	a.state.mu.Unlock()
	if already {
		return nil
	}
	a.mDiscoveries.Inc()
	a.sendRREQ(ctx, dst, 1, a.cfg.TTLStart)
	return nil
}

func (a *AODV) sendRREQ(ctx *core.Context, dst mnet.Addr, attempt int, ttl uint8) {
	seq := a.state.NextSeq()
	lastSeq := uint16(0)
	if e, ok := a.state.Routes.Get(mnet.HostPrefix(dst)); ok {
		lastSeq = e.SeqNum
	}
	msg := &packetbb.Message{
		Type:       packetbb.MsgRREQ,
		Originator: ctx.Node(),
		SeqNum:     seq,
		HopLimit:   ttl,
		TLVs:       []packetbb.TLV{{Type: tlvOrigSeq, Value: packetbb.U16(seq)}},
		AddrBlocks: []packetbb.AddrBlock{{
			Addrs: []mnet.Addr{dst},
			TLVs: []packetbb.AddrTLV{{
				Type: packetbb.ATLVTargetSeq, Value: packetbb.U16(lastSeq),
			}},
		}},
	}
	if a.cfg.DestinationOnly {
		msg.TLVs = append(msg.TLVs, packetbb.TLV{Type: tlvDestOnly})
	}
	now := ctx.Clock().Now()
	a.state.seenDup(dupKey{orig: ctx.Node(), seq: seq}, now)
	a.mRREQTx.Inc()
	ctx.Emit(&event.Event{Type: event.REOut, Msg: msg, Dst: mnet.Broadcast})

	timer := ctx.Clock().AfterFunc(a.cfg.RREQWait, func() {
		_ = a.proto.RunLocked(func(ctx *core.Context) { a.retry(ctx, dst, attempt) })
	})
	a.state.mu.Lock()
	if p, ok := a.state.pending[dst]; ok {
		p.tries = attempt
		p.ttl = ttl
		p.timer = timer
	} else {
		timer.Stop()
	}
	a.state.mu.Unlock()
}

// retry widens the ring (RFC 3561 §6.4) and re-floods, up to RREQTries
// full-diameter attempts.
func (a *AODV) retry(ctx *core.Context, dst mnet.Addr, attempt int) {
	a.state.mu.Lock()
	p, ok := a.state.pending[dst]
	if !ok || p.tries != attempt {
		a.state.mu.Unlock()
		return
	}
	nextTTL := p.ttl + a.cfg.TTLIncrement
	expanding := p.ttl < a.cfg.TTLThreshold
	if !expanding {
		nextTTL = a.cfg.NetDiameter
	}
	if !expanding && attempt >= a.cfg.RREQTries {
		delete(a.state.pending, dst)
		a.state.stats.GiveUps++
		a.state.mu.Unlock()
		a.mGiveUps.Inc()
		return
	}
	a.state.stats.Retries++
	a.mRetries.Inc()
	if expanding {
		a.state.stats.RingExpansions++
	}
	a.state.mu.Unlock()
	a.sendRREQ(ctx, dst, attempt+1, nextTTL)
}

// learnRoute applies the AODV route-update rule; it reports whether the
// table changed.
func (a *AODV) learnRoute(ctx *core.Context, node, prevHop mnet.Addr, metric int, seq uint16) bool {
	if node == ctx.Node() {
		return false
	}
	if metric < 1 {
		metric = 1
	}
	dst := mnet.HostPrefix(node)
	now := ctx.Clock().Now()
	if cur, ok := a.state.Routes.Get(dst); ok && cur.Valid {
		if best, has := cur.Best(now); has {
			newer := seqNewer(seq, cur.SeqNum)
			if !newer && !(seq == cur.SeqNum && metric < best.Metric) {
				return false
			}
		}
	}
	a.state.Routes.Upsert(route.Entry{
		Dst:    dst,
		Paths:  []route.Path{{NextHop: prevHop, Metric: metric, Expires: now.Add(a.cfg.RouteLifetime)}},
		SeqNum: seq,
		Valid:  true,
		Proto:  a.proto.Name(),
	})
	a.completeDiscovery(ctx, node)
	return true
}

func (a *AODV) completeDiscovery(ctx *core.Context, dst mnet.Addr) {
	a.state.mu.Lock()
	p, ok := a.state.pending[dst]
	if ok {
		if p.timer != nil {
			p.timer.Stop()
		}
		delete(a.state.pending, dst)
	}
	a.state.mu.Unlock()
	if ok {
		if !p.started.IsZero() {
			a.mDiscoveryLat.Observe(ctx.Clock().Now().Sub(p.started))
		}
		ctx.Emit(&event.Event{Type: event.RouteFound, Route: &event.RoutePayload{Dst: dst}})
	}
}

func (a *AODV) onRE(ctx *core.Context, ev *event.Event) error {
	msg := ev.Msg
	if msg == nil || msg.Originator == ctx.Node() || len(msg.AddrBlocks) == 0 {
		return nil
	}
	switch msg.Type {
	case packetbb.MsgRREQ:
		return a.onRREQ(ctx, ev)
	case packetbb.MsgRREP:
		return a.onRREP(ctx, ev)
	default:
		return nil
	}
}

func (a *AODV) onRREQ(ctx *core.Context, ev *event.Event) error {
	msg := ev.Msg
	target := msg.AddrBlocks[0].Addrs[0]
	now := ctx.Clock().Now()
	metric := int(msg.HopCount) + 1

	origSeq := msg.SeqNum
	if tlv, ok := msg.FindTLV(tlvOrigSeq); ok {
		if v, err := packetbb.ParseU16(tlv.Value); err == nil {
			origSeq = v
		}
	}
	// Reverse route to the originator; record the previous hop as a
	// precursor of the forward direction.
	a.learnRoute(ctx, msg.Originator, ev.Src, metric, origSeq)

	if a.state.seenDup(dupKey{orig: msg.Originator, seq: msg.SeqNum}, now) {
		return nil
	}
	targetSeq := uint16(0)
	if tlv, ok := msg.AddrBlocks[0].AddrTLVFor(packetbb.ATLVTargetSeq, 0); ok {
		if v, err := packetbb.ParseU16(tlv.Value); err == nil {
			targetSeq = v
		}
	}
	_, destOnly := msg.FindTLV(tlvDestOnly)

	if target == ctx.Node() {
		a.sendRREP(ctx, msg.Originator, ctx.Node(), a.state.NextSeq(), 0, ev.Src, false)
		return nil
	}
	// Intermediate (gratuitous) RREP: answer if we hold a route to the
	// target at least as fresh as the originator demands (RFC 3561 §6.6).
	if !destOnly {
		if e, ok := a.state.Routes.Get(mnet.HostPrefix(target)); ok && e.Valid {
			if best, has := e.Best(now); has && (targetSeq == 0 || !seqNewer(targetSeq, e.SeqNum)) {
				a.state.addPrecursor(target, ev.Src)
				a.state.bump(func(st *Stats) { st.GratuitousRREPs++ })
				a.sendRREP(ctx, msg.Originator, target, e.SeqNum, uint8(best.Metric), ev.Src, true)
				return nil
			}
		}
	}
	if msg.HopLimit <= 1 {
		return nil
	}
	fwd := msg.Clone()
	fwd.HopLimit--
	fwd.HopCount++
	a.state.bump(func(st *Stats) { st.RREQForwards++ })
	ctx.Emit(&event.Event{Type: event.REOut, Msg: fwd, Dst: mnet.Broadcast})
	return nil
}

// sendRREP unicasts a route reply towards reqOrig. target/targetSeq name
// the destination the reply answers for; hopsToTarget seeds the metric for
// gratuitous replies.
func (a *AODV) sendRREP(ctx *core.Context, reqOrig, target mnet.Addr, targetSeq uint16, hopsToTarget uint8, via mnet.Addr, gratuitous bool) {
	rrep := &packetbb.Message{
		Type:       packetbb.MsgRREP,
		Originator: target,
		SeqNum:     targetSeq,
		HopLimit:   a.cfg.NetDiameter,
		HopCount:   hopsToTarget,
		AddrBlocks: []packetbb.AddrBlock{{Addrs: []mnet.Addr{reqOrig}}},
	}
	if !gratuitous {
		a.state.bump(func(st *Stats) { st.RREPSent++ })
	}
	ctx.Emit(&event.Event{Type: event.REOut, Msg: rrep, Dst: via})
}

func (a *AODV) onRREP(ctx *core.Context, ev *event.Event) error {
	msg := ev.Msg
	reqOrig := msg.AddrBlocks[0].Addrs[0]
	metric := int(msg.HopCount) + 1

	a.learnRoute(ctx, msg.Originator, ev.Src, metric, msg.SeqNum)
	if reqOrig == ctx.Node() {
		return nil
	}
	_, p, err := a.state.Routes.Lookup(reqOrig)
	if err != nil || msg.HopLimit <= 1 {
		return nil
	}
	// Precursor bookkeeping: the next hop towards the originator will use
	// us to reach the target, and vice versa.
	a.state.addPrecursor(msg.Originator, p.NextHop)
	a.state.addPrecursor(reqOrig, ev.Src)

	fwd := msg.Clone()
	fwd.HopLimit--
	fwd.HopCount++
	ctx.Emit(&event.Event{Type: event.REOut, Msg: fwd, Dst: p.NextHop})
	return nil
}

func (a *AODV) onRouteUpdate(ctx *core.Context, ev *event.Event) error {
	if ev.Route == nil {
		return nil
	}
	a.state.Routes.ExtendLifetime(mnet.HostPrefix(ev.Route.Dst), mnet.Addr{}, a.cfg.RouteLifetime)
	return nil
}

func (a *AODV) onLinkBreak(ctx *core.Context, ev *event.Event) error {
	if ev.Route == nil || ev.Route.NextHop.IsUnspecified() {
		return nil
	}
	a.invalidateVia(ctx, ev.Route.NextHop)
	return nil
}

func (a *AODV) onNhood(ctx *core.Context, ev *event.Event) error {
	if ev.Nhood == nil || ev.Nhood.Kind != event.NeighborLost {
		return nil
	}
	a.invalidateVia(ctx, ev.Nhood.Neighbor)
	return nil
}

// invalidateVia drops routes through the broken hop and notifies each
// destination's precursors with unicast RERRs.
func (a *AODV) invalidateVia(ctx *core.Context, nextHop mnet.Addr) {
	affected := a.state.Routes.InvalidateVia(nextHop)
	for _, pfx := range affected {
		precursors := a.state.takePrecursors(pfx.Addr)
		if len(precursors) == 0 {
			continue
		}
		msg := a.buildRERR(ctx, []mnet.Addr{pfx.Addr})
		for _, up := range precursors {
			out := *msg
			ctx.Emit(&event.Event{Type: event.RerrOut, Msg: &out, Dst: up})
		}
	}
}

func (a *AODV) onSendRouteErr(ctx *core.Context, ev *event.Event) error {
	if ev.Route == nil {
		return nil
	}
	// We have no route for transit traffic: tell the packet's source side.
	msg := a.buildRERR(ctx, []mnet.Addr{ev.Route.Dst})
	ctx.Emit(&event.Event{Type: event.RerrOut, Msg: msg, Dst: mnet.Broadcast})
	return nil
}

func (a *AODV) buildRERR(ctx *core.Context, unreachable []mnet.Addr) *packetbb.Message {
	a.state.bump(func(st *Stats) { st.RERRSent++ })
	return &packetbb.Message{
		Type:       packetbb.MsgRERR,
		Originator: ctx.Node(),
		SeqNum:     a.state.NextSeq(),
		HopLimit:   a.cfg.NetDiameter,
		AddrBlocks: []packetbb.AddrBlock{{Addrs: unreachable}},
	}
}

func (a *AODV) onRERR(ctx *core.Context, ev *event.Event) error {
	msg := ev.Msg
	if msg == nil || msg.Originator == ctx.Node() || len(msg.AddrBlocks) == 0 {
		return nil
	}
	if a.state.seenDup(dupKey{orig: msg.Originator, seq: msg.SeqNum}, ctx.Clock().Now()) {
		return nil
	}
	for _, dead := range msg.AddrBlocks[0].Addrs {
		p := mnet.HostPrefix(dead)
		e, ok := a.state.Routes.Get(p)
		if !ok || !e.Valid {
			continue
		}
		uses := false
		for _, path := range e.Paths {
			if path.NextHop == ev.Src {
				uses = true
				break
			}
		}
		if !uses {
			continue
		}
		a.state.Routes.Invalidate(p)
		// Propagate to our own precursors for this destination.
		for _, up := range a.state.takePrecursors(dead) {
			fwd := msg.Clone()
			fwd.HopLimit--
			ctx.Emit(&event.Event{Type: event.RerrOut, Msg: fwd, Dst: up})
		}
	}
	return nil
}

func (a *AODV) sweep(ctx *core.Context) {
	a.state.Routes.PurgeExpired()
	now := ctx.Clock().Now()
	a.state.mu.Lock()
	for k, t := range a.state.dupes {
		if now.Sub(t) > 30*time.Second {
			delete(a.state.dupes, k)
		}
	}
	a.state.mu.Unlock()
}

// seqNewer reports a > b under 16-bit serial arithmetic.
func seqNewer(a, b uint16) bool {
	return a != b && ((a > b && a-b < 0x8000) || (a < b && b-a > 0x8000))
}
