// Package policy closes the paper's reconfiguration control loop (§4.5):
// MANETKit itself provides context monitoring and reconfiguration
// enactment, and "leaves the decision making to higher-level software",
// suggesting event-condition-action rules fed from context information.
// This package is that higher-level software: a small ECA rule engine that
// subscribes to a deployment's context concentrator, maintains rolling
// metrics, and fires reconfiguration actions — the combination the paper
// describes as "a complete reconfigurable system" (and lists as future
// work in §7).
package policy

import (
	"fmt"
	"sync"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/mnet"
)

// Metrics are the rolling aggregates rules can condition on, maintained
// from the context events observed so far.
type Metrics struct {
	// BatteryFraction is the last reported battery level (1.0 before any
	// report).
	BatteryFraction float64
	// Neighbors estimates the current neighbourhood size (appearances
	// minus losses).
	Neighbors int
	// MeanLinkQuality averages the last link-quality report per neighbour.
	MeanLinkQuality float64
	// LinkBreaks counts LINK_BREAK events.
	LinkBreaks uint64
	// RouteDiscoveries counts NO_ROUTE events (reactive discovery load).
	RouteDiscoveries uint64
	// EventCounts tallies every observed context/routing event by type.
	EventCounts map[event.Type]uint64
}

func (m *Metrics) clone() Metrics {
	c := *m
	c.EventCounts = make(map[event.Type]uint64, len(m.EventCounts))
	for k, v := range m.EventCounts {
		c.EventCounts[k] = v
	}
	return c
}

// Rule is one event-condition-action rule.
type Rule struct {
	// Name identifies the rule in the firing log.
	Name string
	// When filters triggering events (may be abstract, e.g. event.Context).
	When event.Type
	// Condition decides whether to fire given the triggering event and the
	// current metrics. A nil Condition always fires.
	Condition func(ev *event.Event, m Metrics) bool
	// Action enacts the reconfiguration.
	Action func() error
	// Cooldown suppresses re-firing for the given duration (0: no limit).
	Cooldown time.Duration
	// Once disables the rule after its first firing.
	Once bool
}

// Firing records one rule activation.
type Firing struct {
	Rule string
	At   time.Time
	Err  error
}

// Engine evaluates ECA rules over one node's context stream.
type Engine struct {
	mgr *core.Manager

	mu        sync.Mutex
	rules     []*ruleState
	metrics   Metrics
	linkQ     map[mnet.Addr]float64
	firings   []Firing
	suspended bool
}

type ruleState struct {
	rule      Rule
	lastFired time.Time
	hasFired  bool
	disabled  bool
}

// New attaches an engine to a deployment's context concentrator. The
// engine observes every event the concentrator sees (event.Any).
func New(mgr *core.Manager) *Engine {
	e := &Engine{
		mgr:   mgr,
		linkQ: make(map[mnet.Addr]float64),
	}
	e.metrics.BatteryFraction = 1.0
	e.metrics.EventCounts = make(map[event.Type]uint64)
	mgr.SubscribeContext(event.Any, e.observe)
	return e
}

// AddRule registers a rule. Rules are evaluated in registration order.
func (e *Engine) AddRule(r Rule) error {
	if r.Name == "" || r.Action == nil || r.When == "" {
		return fmt.Errorf("policy: rule needs a name, a trigger type and an action")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rules = append(e.rules, &ruleState{rule: r})
	return nil
}

// Suspend pauses rule evaluation (metrics keep updating).
func (e *Engine) Suspend(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.suspended = on
}

// Metrics returns a snapshot of the rolling aggregates.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.metrics.clone()
}

// Firings returns the rule activation log.
func (e *Engine) Firings() []Firing {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Firing(nil), e.firings...)
}

// observe folds one context event into the metrics and evaluates rules.
func (e *Engine) observe(ev *event.Event) {
	e.mu.Lock()
	e.metrics.EventCounts[ev.Type]++
	switch ev.Type {
	case event.PowerStatus:
		if ev.Power != nil {
			e.metrics.BatteryFraction = ev.Power.Fraction
		}
	case event.NhoodChange:
		if ev.Nhood != nil {
			switch ev.Nhood.Kind {
			case event.NeighborAppeared:
				e.metrics.Neighbors++
			case event.NeighborLost:
				if e.metrics.Neighbors > 0 {
					e.metrics.Neighbors--
				}
				delete(e.linkQ, ev.Nhood.Neighbor)
			}
		}
	case event.LinkInfo:
		if ev.Link != nil {
			e.linkQ[ev.Link.Neighbor] = ev.Link.Quality
			total := 0.0
			for _, q := range e.linkQ {
				total += q
			}
			e.metrics.MeanLinkQuality = total / float64(len(e.linkQ))
		}
	case event.LinkBreak:
		e.metrics.LinkBreaks++
	case event.NoRoute:
		e.metrics.RouteDiscoveries++
	}
	if e.suspended {
		e.mu.Unlock()
		return
	}
	now := e.mgr.Clock().Now()
	snapshot := e.metrics.clone()
	type pending struct {
		rs *ruleState
	}
	var due []pending
	for _, rs := range e.rules {
		if rs.disabled {
			continue
		}
		if !e.mgr.Ontology().Matches(ev.Type, rs.rule.When) {
			continue
		}
		if rs.rule.Cooldown > 0 && rs.hasFired && now.Sub(rs.lastFired) < rs.rule.Cooldown {
			continue
		}
		if rs.rule.Condition != nil && !rs.rule.Condition(ev, snapshot) {
			continue
		}
		rs.hasFired = true
		rs.lastFired = now
		if rs.rule.Once {
			rs.disabled = true
		}
		due = append(due, pending{rs: rs})
	}
	e.mu.Unlock()

	// Actions run outside the engine lock: they typically reconfigure the
	// deployment, which re-enters the framework.
	for _, p := range due {
		err := p.rs.rule.Action()
		e.mu.Lock()
		e.firings = append(e.firings, Firing{Rule: p.rs.rule.Name, At: now, Err: err})
		e.mu.Unlock()
	}
}
