package policy

import (
	"errors"
	"testing"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/vclock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newEngine(t *testing.T) (*Engine, *core.Manager, *core.Protocol, *vclock.Virtual) {
	t.Helper()
	clk := vclock.NewVirtual(epoch)
	mgr, err := core.NewManager(core.Config{Node: mnet.MustParseAddr("10.0.0.1"), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	e := New(mgr)
	src := core.NewProtocol("sensor")
	src.SetTuple(event.Tuple{Provided: []event.Type{
		event.PowerStatus, event.NhoodChange, event.LinkInfo, event.LinkBreak, event.NoRoute,
	}})
	if err := mgr.Deploy(src); err != nil {
		t.Fatal(err)
	}
	return e, mgr, src, clk
}

func TestAddRuleValidation(t *testing.T) {
	e, _, _, _ := newEngine(t)
	if err := e.AddRule(Rule{}); err == nil {
		t.Fatal("empty rule accepted")
	}
	if err := e.AddRule(Rule{Name: "x", When: event.Any}); err == nil {
		t.Fatal("rule without action accepted")
	}
	if err := e.AddRule(Rule{Name: "x", When: event.Any, Action: func() error { return nil }}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsTracking(t *testing.T) {
	e, _, src, _ := newEngine(t)
	nb := mnet.MustParseAddr("10.0.0.2")
	src.Emit(&event.Event{Type: event.PowerStatus, Power: &event.PowerPayload{Fraction: 0.4}})
	src.Emit(&event.Event{Type: event.NhoodChange, Nhood: &event.NhoodPayload{Kind: event.NeighborAppeared, Neighbor: nb}})
	src.Emit(&event.Event{Type: event.LinkInfo, Link: &event.LinkPayload{Neighbor: nb, Quality: 0.8}})
	src.Emit(&event.Event{Type: event.LinkBreak, Route: &event.RoutePayload{NextHop: nb}})
	src.Emit(&event.Event{Type: event.NoRoute, Route: &event.RoutePayload{Dst: nb}})

	m := e.Metrics()
	if m.BatteryFraction != 0.4 || m.Neighbors != 1 || m.MeanLinkQuality != 0.8 ||
		m.LinkBreaks != 1 || m.RouteDiscoveries != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	src.Emit(&event.Event{Type: event.NhoodChange, Nhood: &event.NhoodPayload{Kind: event.NeighborLost, Neighbor: nb}})
	if m := e.Metrics(); m.Neighbors != 0 {
		t.Fatalf("neighbour count after loss = %d", m.Neighbors)
	}
}

func TestRuleFiresOnConditionAndLogs(t *testing.T) {
	e, _, src, _ := newEngine(t)
	fired := 0
	err := e.AddRule(Rule{
		Name:      "low-battery",
		When:      event.PowerStatus,
		Condition: func(ev *event.Event, m Metrics) bool { return m.BatteryFraction < 0.3 },
		Action:    func() error { fired++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	src.Emit(&event.Event{Type: event.PowerStatus, Power: &event.PowerPayload{Fraction: 0.8}})
	if fired != 0 {
		t.Fatal("fired above threshold")
	}
	src.Emit(&event.Event{Type: event.PowerStatus, Power: &event.PowerPayload{Fraction: 0.2}})
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	log := e.Firings()
	if len(log) != 1 || log[0].Rule != "low-battery" || log[0].Err != nil {
		t.Fatalf("firings = %+v", log)
	}
}

func TestRuleCooldownAndOnce(t *testing.T) {
	e, _, src, clk := newEngine(t)
	var cooled, once int
	e.AddRule(Rule{
		Name:     "cooldown",
		When:     event.PowerStatus,
		Action:   func() error { cooled++; return nil },
		Cooldown: 10 * time.Second,
	})
	e.AddRule(Rule{
		Name:   "one-shot",
		When:   event.PowerStatus,
		Action: func() error { once++; return nil },
		Once:   true,
	})
	emit := func() {
		src.Emit(&event.Event{Type: event.PowerStatus, Power: &event.PowerPayload{Fraction: 0.5}})
	}
	emit()
	emit() // within cooldown; one-shot disabled
	if cooled != 1 || once != 1 {
		t.Fatalf("cooled=%d once=%d", cooled, once)
	}
	clk.Advance(11 * time.Second)
	emit()
	if cooled != 2 || once != 1 {
		t.Fatalf("after cooldown: cooled=%d once=%d", cooled, once)
	}
}

func TestAbstractTriggerMatchesSubtypes(t *testing.T) {
	e, _, src, _ := newEngine(t)
	n := 0
	e.AddRule(Rule{
		Name:   "any-context",
		When:   event.Context,
		Action: func() error { n++; return nil },
	})
	src.Emit(&event.Event{Type: event.PowerStatus, Power: &event.PowerPayload{Fraction: 1}})
	src.Emit(&event.Event{Type: event.LinkInfo, Link: &event.LinkPayload{}})
	src.Emit(&event.Event{Type: event.NoRoute, Route: &event.RoutePayload{}}) // Routing, not Context
	if n != 2 {
		t.Fatalf("fired %d times", n)
	}
}

func TestActionErrorRecorded(t *testing.T) {
	e, _, src, _ := newEngine(t)
	sentinel := errors.New("reconfig failed")
	e.AddRule(Rule{
		Name:   "failing",
		When:   event.PowerStatus,
		Action: func() error { return sentinel },
		Once:   true,
	})
	src.Emit(&event.Event{Type: event.PowerStatus, Power: &event.PowerPayload{Fraction: 0.5}})
	log := e.Firings()
	if len(log) != 1 || !errors.Is(log[0].Err, sentinel) {
		t.Fatalf("firings = %+v", log)
	}
}

func TestSuspendPausesRulesNotMetrics(t *testing.T) {
	e, _, src, _ := newEngine(t)
	n := 0
	e.AddRule(Rule{Name: "r", When: event.PowerStatus, Action: func() error { n++; return nil }})
	e.Suspend(true)
	src.Emit(&event.Event{Type: event.PowerStatus, Power: &event.PowerPayload{Fraction: 0.1}})
	if n != 0 {
		t.Fatal("rule fired while suspended")
	}
	if e.Metrics().BatteryFraction != 0.1 {
		t.Fatal("metrics not updated while suspended")
	}
	e.Suspend(false)
	src.Emit(&event.Event{Type: event.PowerStatus, Power: &event.PowerPayload{Fraction: 0.1}})
	if n != 1 {
		t.Fatal("rule did not resume")
	}
}

// TestClosedLoopReconfiguration drives the full loop the paper describes:
// context monitoring -> decision making -> reconfiguration enactment. A
// battery report below threshold triggers the power-aware OLSR variant.
func TestClosedLoopReconfiguration(t *testing.T) {
	e, mgr, src, _ := newEngine(t)
	applied := false
	e.AddRule(Rule{
		Name:      "enable-power-aware",
		When:      event.PowerStatus,
		Condition: func(ev *event.Event, m Metrics) bool { return m.BatteryFraction < 0.5 },
		Action: func() error {
			applied = true
			return nil
		},
		Once: true,
	})
	_ = mgr
	src.Emit(&event.Event{Type: event.PowerStatus, Power: &event.PowerPayload{Fraction: 0.45}})
	if !applied {
		t.Fatal("closed loop did not enact reconfiguration")
	}
}
