package vclock

import (
	"math/rand"
	"sync"
	"time"
)

// Periodic invokes a callback at a fixed interval with optional uniform
// jitter, in the style of the MANET HELLO/TC emission timers: each firing is
// scheduled interval*(1±jitter) after the previous one. MANET protocols
// jitter their beacons to avoid synchronised broadcast storms (RFC 5148).
type Periodic struct {
	clock    Clock
	interval time.Duration
	jitter   float64
	fn       func()

	mu      sync.Mutex
	rng     *rand.Rand
	timer   Timer
	stopped bool
}

// NewPeriodic starts a periodic timer on c. jitter is the maximum fractional
// deviation (0 ≤ jitter < 1); seed makes the jitter sequence reproducible.
// The first firing happens after one (jittered) interval.
func NewPeriodic(c Clock, interval time.Duration, jitter float64, seed int64, fn func()) *Periodic {
	if interval <= 0 {
		panic("vclock: non-positive periodic interval")
	}
	if jitter < 0 || jitter >= 1 {
		panic("vclock: jitter fraction out of [0,1)")
	}
	p := &Periodic{
		clock:    c,
		interval: interval,
		jitter:   jitter,
		fn:       fn,
		rng:      rand.New(rand.NewSource(seed)),
	}
	p.mu.Lock()
	p.timer = c.AfterFunc(p.nextDelayLocked(), p.fire)
	p.mu.Unlock()
	return p
}

// Stop cancels future firings. A firing already in progress completes.
func (p *Periodic) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stopped = true
	if p.timer != nil {
		p.timer.Stop()
	}
}

// SetInterval changes the base interval and re-arms the pending firing to
// the new cadence (e.g. a fisheye component stretching the TC interval).
func (p *Periodic) SetInterval(d time.Duration) {
	if d <= 0 {
		panic("vclock: non-positive periodic interval")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.interval = d
	if !p.stopped && p.timer != nil {
		p.timer.Reset(p.nextDelayLocked())
	}
}

// Interval returns the current base interval.
func (p *Periodic) Interval() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.interval
}

func (p *Periodic) fire() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()

	p.fn()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return
	}
	p.timer = p.clock.AfterFunc(p.nextDelayLocked(), p.fire)
}

func (p *Periodic) nextDelayLocked() time.Duration {
	d := p.interval
	if p.jitter > 0 {
		// Uniform in [interval*(1-jitter), interval*(1+jitter)].
		f := 1 + p.jitter*(2*p.rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	if d <= 0 {
		d = 1
	}
	return d
}
