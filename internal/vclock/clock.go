// Package vclock abstracts time for the whole of MANETKit.
//
// Every component that needs timers or timestamps takes a Clock. Production
// deployments use Real(); tests and the experiment harness use a Virtual
// clock, which makes protocol runs — HELLO beacons, TC floods, route
// timeouts, emulated link delays — fully deterministic and lets a multi-
// second scenario execute in microseconds of wall time.
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Timer is a handle to a pending AfterFunc callback.
type Timer interface {
	// Stop cancels the timer. It reports whether the call prevented the
	// callback from firing.
	Stop() bool
	// Reset re-arms the timer to fire after d. It reports whether the timer
	// was still pending when it was reset.
	Reset(d time.Duration) bool
}

// Clock supplies timestamps and one-shot timers.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// AfterFunc runs f on its own goroutine (real clock) or synchronously
	// during Advance (virtual clock) once d has elapsed.
	AfterFunc(d time.Duration, f func()) Timer
	// Since returns the time elapsed on this clock since t.
	Since(t time.Time) time.Duration
}

// realClock grounds Clock in the time package.
type realClock struct{}

var _ Clock = realClock{}

// Real returns the wall clock.
func Real() Clock { return realClock{} }

func (realClock) Now() time.Time                  { return time.Now() }
func (realClock) Since(t time.Time) time.Duration { return time.Since(t) }
func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool                 { return rt.t.Stop() }
func (rt realTimer) Reset(d time.Duration) bool { return rt.t.Reset(d) }

// Virtual is a deterministic clock driven explicitly by Advance, Step or
// RunUntilIdle. Timer callbacks execute synchronously on the goroutine that
// drives the clock, in strict deadline order (ties broken by scheduling
// order), which gives byte-for-byte reproducible simulations.
//
// Virtual is safe for concurrent use: callbacks are invoked without the
// internal lock held and may freely schedule or cancel timers.
type Virtual struct {
	mu        sync.Mutex
	now       time.Time
	timers    timerHeap
	seq       uint64
	advancing bool
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock whose current time is start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since returns the virtual time elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// AfterFunc schedules f to run when the clock has advanced by d.
// Non-positive d fires at the current instant on the next Advance/Step.
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	vt := &vtimer{clock: v, fn: f, when: v.now.Add(d), seq: v.seq, index: -1}
	v.seq++
	heap.Push(&v.timers, vt)
	return vt
}

// AfterFuncAt schedules f to run when the clock reaches the absolute
// instant t (a deadline at or before the current instant fires at the
// current instant on the next Advance/Step). It is the anchor primitive of
// the emunet event core: the engine keeps its own delivery queue and arms
// exactly one vclock timer at the queue's earliest deadline, so the clock's
// heap holds protocol timers plus a single anchor instead of one timer per
// in-flight frame. Equal-deadline ties break by registration order, exactly
// as with AfterFunc.
func (v *Virtual) AfterFuncAt(t time.Time, f func()) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	when := t
	if when.Before(v.now) {
		when = v.now
	}
	vt := &vtimer{clock: v, fn: f, when: when, seq: v.seq, index: -1}
	v.seq++
	heap.Push(&v.timers, vt)
	return vt
}

// Pending returns the number of armed timers.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.timers.Len()
}

// NextDeadline reports the deadline of the earliest pending timer.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.timers.Len() == 0 {
		return time.Time{}, false
	}
	return v.timers[0].when, true
}

// Advance moves the clock forward by d, firing every timer whose deadline
// falls within the window in deadline order. It returns the number of
// callbacks fired. Advance must not be called from within a timer callback.
func (v *Virtual) Advance(d time.Duration) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	target := v.now.Add(d)
	fired := v.runLocked(func() bool {
		return v.timers.Len() > 0 && !v.timers[0].when.After(target)
	}, -1)
	if target.After(v.now) {
		v.now = target
	}
	return fired
}

// Step fires the single earliest pending timer, advancing the clock to its
// deadline. It reports whether a timer fired.
func (v *Virtual) Step() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.runLocked(func() bool { return v.timers.Len() > 0 }, 1) == 1
}

// RunUntilIdle fires timers in deadline order until none remain or maxEvents
// callbacks have run (maxEvents < 0 means unbounded). It returns the number
// fired. Useful for draining a simulation to quiescence.
func (v *Virtual) RunUntilIdle(maxEvents int) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.runLocked(func() bool { return v.timers.Len() > 0 }, maxEvents)
}

// RunUntil advances the clock to t, firing all timers due on the way.
func (v *Virtual) RunUntil(t time.Time) int {
	v.mu.Lock()
	d := t.Sub(v.now)
	v.mu.Unlock()
	if d < 0 {
		return 0
	}
	return v.Advance(d)
}

// runLocked pops and fires timers while cond holds, up to max callbacks
// (max < 0 is unbounded). Caller holds v.mu; callbacks run unlocked.
func (v *Virtual) runLocked(cond func() bool, max int) int {
	if v.advancing {
		panic("vclock: re-entrant Advance/Step from timer callback")
	}
	v.advancing = true
	defer func() { v.advancing = false }()

	fired := 0
	for cond() && (max < 0 || fired < max) {
		vt := heap.Pop(&v.timers).(*vtimer)
		if vt.when.After(v.now) {
			v.now = vt.when
		}
		fn := vt.fn
		vt.fired = true
		v.mu.Unlock()
		func() {
			// Reacquire even if the callback panics, so the deferred
			// unlock in the public entry point stays balanced.
			defer v.mu.Lock()
			fn()
		}()
		fired++
	}
	return fired
}

// vtimer is a timer registered with a Virtual clock.
type vtimer struct {
	clock *Virtual
	fn    func()
	when  time.Time
	seq   uint64
	index int // heap index, -1 when not queued
	fired bool
}

var _ Timer = (*vtimer)(nil)

func (t *vtimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.index < 0 {
		return false
	}
	heap.Remove(&t.clock.timers, t.index)
	return true
}

func (t *vtimer) Reset(d time.Duration) bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	wasPending := t.index >= 0
	if wasPending {
		heap.Remove(&t.clock.timers, t.index)
	}
	t.when = t.clock.now.Add(d)
	t.seq = t.clock.seq
	t.clock.seq++
	t.fired = false
	heap.Push(&t.clock.timers, t)
	return wasPending
}

// timerHeap orders timers by (deadline, registration sequence).
type timerHeap []*vtimer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	t := x.(*vtimer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
