package vclock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualNowAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	if !v.Now().Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", v.Now(), epoch)
	}
	v.Advance(3 * time.Second)
	if got, want := v.Now(), epoch.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("after Advance: Now() = %v, want %v", got, want)
	}
	if v.Since(epoch) != 3*time.Second {
		t.Fatalf("Since(epoch) = %v", v.Since(epoch))
	}
}

func TestVirtualFiresInDeadlineOrder(t *testing.T) {
	v := NewVirtual(epoch)
	var order []int
	v.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	v.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	v.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })

	if fired := v.Advance(25 * time.Millisecond); fired != 2 {
		t.Fatalf("Advance fired %d, want 2", fired)
	}
	if fired := v.Advance(10 * time.Millisecond); fired != 1 {
		t.Fatalf("second Advance fired %d, want 1", fired)
	}
	for i, got := range order {
		if got != i+1 {
			t.Fatalf("firing order = %v", order)
		}
	}
}

func TestVirtualTieBreakIsRegistrationOrder(t *testing.T) {
	v := NewVirtual(epoch)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		v.AfterFunc(5*time.Millisecond, func() { order = append(order, i) })
	}
	v.Advance(5 * time.Millisecond)
	for i, got := range order {
		if got != i {
			t.Fatalf("tie-break order = %v", order)
		}
	}
}

func TestVirtualClockTimeDuringCallback(t *testing.T) {
	v := NewVirtual(epoch)
	var seen time.Time
	v.AfterFunc(7*time.Millisecond, func() { seen = v.Now() })
	v.Advance(time.Second)
	if want := epoch.Add(7 * time.Millisecond); !seen.Equal(want) {
		t.Fatalf("Now() inside callback = %v, want %v", seen, want)
	}
}

func TestVirtualCallbackSchedulesMore(t *testing.T) {
	v := NewVirtual(epoch)
	var hops int
	var schedule func()
	schedule = func() {
		hops++
		if hops < 5 {
			v.AfterFunc(time.Millisecond, schedule)
		}
	}
	v.AfterFunc(time.Millisecond, schedule)
	v.Advance(10 * time.Millisecond)
	if hops != 5 {
		t.Fatalf("hops = %d, want 5", hops)
	}
}

func TestVirtualStop(t *testing.T) {
	v := NewVirtual(epoch)
	fired := false
	tm := v.AfterFunc(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() on pending timer = false")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	v.Advance(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestVirtualReset(t *testing.T) {
	v := NewVirtual(epoch)
	var firedAt time.Time
	tm := v.AfterFunc(time.Millisecond, func() { firedAt = v.Now() })
	if !tm.Reset(50 * time.Millisecond) {
		t.Fatal("Reset on pending timer = false")
	}
	v.Advance(time.Second)
	if want := epoch.Add(50 * time.Millisecond); !firedAt.Equal(want) {
		t.Fatalf("fired at %v, want %v", firedAt, want)
	}
	// Reset after firing re-arms.
	if tm.Reset(time.Millisecond) {
		t.Fatal("Reset on fired timer = true")
	}
	firedAt = time.Time{}
	v.Advance(time.Millisecond)
	if firedAt.IsZero() {
		t.Fatal("re-armed timer did not fire")
	}
}

func TestVirtualStepAndRunUntilIdle(t *testing.T) {
	v := NewVirtual(epoch)
	n := 0
	for i := 1; i <= 4; i++ {
		v.AfterFunc(time.Duration(i)*time.Millisecond, func() { n++ })
	}
	if !v.Step() {
		t.Fatal("Step with pending timers = false")
	}
	if n != 1 {
		t.Fatalf("after Step n = %d", n)
	}
	if got := v.RunUntilIdle(2); got != 2 {
		t.Fatalf("RunUntilIdle(2) = %d", got)
	}
	if got := v.RunUntilIdle(-1); got != 1 {
		t.Fatalf("RunUntilIdle(-1) = %d", got)
	}
	if v.Step() {
		t.Fatal("Step on idle clock = true")
	}
	if v.Pending() != 0 {
		t.Fatalf("Pending = %d", v.Pending())
	}
}

func TestVirtualNextDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("NextDeadline on empty clock reported a deadline")
	}
	v.AfterFunc(9*time.Millisecond, func() {})
	d, ok := v.NextDeadline()
	if !ok || !d.Equal(epoch.Add(9*time.Millisecond)) {
		t.Fatalf("NextDeadline = %v, %v", d, ok)
	}
}

func TestVirtualRunUntil(t *testing.T) {
	v := NewVirtual(epoch)
	n := 0
	v.AfterFunc(5*time.Millisecond, func() { n++ })
	v.AfterFunc(15*time.Millisecond, func() { n++ })
	v.RunUntil(epoch.Add(10 * time.Millisecond))
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
	if !v.Now().Equal(epoch.Add(10 * time.Millisecond)) {
		t.Fatalf("Now = %v", v.Now())
	}
	if v.RunUntil(epoch) != 0 { // past target is a no-op
		t.Fatal("RunUntil in the past fired timers")
	}
}

func TestVirtualReentrantAdvancePanics(t *testing.T) {
	v := NewVirtual(epoch)
	v.AfterFunc(time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Advance did not panic")
			}
		}()
		v.Advance(time.Millisecond)
	})
	v.Advance(time.Millisecond)
}

func TestVirtualConcurrentAfterFunc(t *testing.T) {
	v := NewVirtual(epoch)
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.AfterFunc(time.Millisecond, func() {
				mu.Lock()
				count++
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	v.Advance(time.Millisecond)
	if count != 50 {
		t.Fatalf("count = %d, want 50", count)
	}
}

func TestRealClockBasics(t *testing.T) {
	c := Real()
	start := c.Now()
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("real AfterFunc never fired")
	}
	if c.Since(start) <= 0 {
		t.Fatal("Since returned non-positive duration")
	}
}

func TestRealTimerStop(t *testing.T) {
	c := Real()
	tm := c.AfterFunc(time.Hour, func() { t.Error("should not fire") })
	if !tm.Stop() {
		t.Fatal("Stop on pending real timer = false")
	}
}

func TestPeriodicFiresRepeatedly(t *testing.T) {
	v := NewVirtual(epoch)
	n := 0
	p := NewPeriodic(v, 10*time.Millisecond, 0, 1, func() { n++ })
	v.Advance(95 * time.Millisecond)
	if n != 9 {
		t.Fatalf("fired %d times, want 9", n)
	}
	p.Stop()
	v.Advance(100 * time.Millisecond)
	if n != 9 {
		t.Fatalf("fired after Stop: %d", n)
	}
}

func TestPeriodicJitterBounds(t *testing.T) {
	v := NewVirtual(epoch)
	var times []time.Time
	p := NewPeriodic(v, 100*time.Millisecond, 0.25, 42, func() { times = append(times, v.Now()) })
	defer p.Stop()
	v.Advance(2 * time.Second)
	if len(times) < 10 {
		t.Fatalf("too few firings: %d", len(times))
	}
	prev := epoch
	varied := false
	for _, ts := range times {
		gap := ts.Sub(prev)
		if gap < 75*time.Millisecond || gap > 125*time.Millisecond {
			t.Fatalf("gap %v outside jitter bounds", gap)
		}
		if gap != 100*time.Millisecond {
			varied = true
		}
		prev = ts
	}
	if !varied {
		t.Fatal("jitter produced no variation")
	}
}

func TestPeriodicDeterministicSeed(t *testing.T) {
	run := func() []time.Duration {
		v := NewVirtual(epoch)
		var gaps []time.Duration
		prev := epoch
		p := NewPeriodic(v, 50*time.Millisecond, 0.5, 7, func() {
			gaps = append(gaps, v.Now().Sub(prev))
			prev = v.Now()
		})
		defer p.Stop()
		v.Advance(time.Second)
		return gaps
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPeriodicSetInterval(t *testing.T) {
	v := NewVirtual(epoch)
	n := 0
	p := NewPeriodic(v, 10*time.Millisecond, 0, 1, func() { n++ })
	defer p.Stop()
	v.Advance(10 * time.Millisecond) // first firing
	p.SetInterval(100 * time.Millisecond)
	if p.Interval() != 100*time.Millisecond {
		t.Fatalf("Interval = %v", p.Interval())
	}
	v.Advance(99 * time.Millisecond)
	if n != 1 {
		t.Fatalf("fired early: n = %d", n)
	}
	v.Advance(time.Millisecond)
	if n != 2 {
		t.Fatalf("did not fire at new interval: n = %d", n)
	}
}

func TestPeriodicValidation(t *testing.T) {
	v := NewVirtual(epoch)
	for _, fn := range []func(){
		func() { NewPeriodic(v, 0, 0, 1, func() {}) },
		func() { NewPeriodic(v, time.Second, 1.0, 1, func() {}) },
		func() { NewPeriodic(v, time.Second, -0.1, 1, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NewPeriodic did not panic")
				}
			}()
			fn()
		}()
	}
}
