// Package route provides the routing-table building blocks listed among
// MANETKit's reusable components (Table 3 of the paper): a protocol-facing
// RIB template with prefix matching, lifetimes and multipath entries, and a
// simulated kernel FIB standing in for the OS forwarding table that the
// System CF's State element manipulates.
package route

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/vclock"
)

// Path is one next-hop alternative towards a destination. Multipath DYMO
// (§5.2) stores several link-disjoint paths per entry; the base protocols
// store exactly one.
type Path struct {
	NextHop mnet.Addr
	Metric  int       // hop count
	Expires time.Time // zero means no expiry
}

// Entry is one RIB route.
type Entry struct {
	Dst   mnet.Prefix
	Paths []Path
	// SeqNum is the destination sequence number (loop freedom in DYMO).
	SeqNum uint16
	// Valid distinguishes usable routes from invalidated ones retained for
	// their sequence numbers.
	Valid bool
	// Proto names the owning protocol ("olsr", "dymo", …).
	Proto string

	// mark is the ReplaceProto sweep generation that last confirmed this
	// entry as desired; entries owned by the sweeping protocol whose mark is
	// stale at the end of a sweep have vanished and are removed.
	mark uint64
}

// Best returns the lowest-metric unexpired path at time now.
func (e *Entry) Best(now time.Time) (Path, bool) {
	best := -1
	for i, p := range e.Paths {
		if !p.Expires.IsZero() && !p.Expires.After(now) {
			continue
		}
		if best < 0 || p.Metric < e.Paths[best].Metric {
			best = i
		}
	}
	if best < 0 {
		return Path{}, false
	}
	return e.Paths[best], true
}

// ErrNoRoute is returned by lookups that find no usable route.
var ErrNoRoute = errors.New("route: no route to destination")

// ChangeKind classifies RIB change notifications.
type ChangeKind uint8

// RIB change kinds.
const (
	Added ChangeKind = iota + 1
	Updated
	Invalidated
	Removed
)

// Table is the RIB template: thread-safe, lifetime-aware, with
// longest-prefix-match lookup and change notification. Construct with
// NewTable.
type Table struct {
	clock vclock.Clock

	mu       sync.Mutex
	entries  map[mnet.Prefix]*Entry
	onChange func(ChangeKind, Entry)
	fib      *FIB
	fibDev   string

	// Batch diff-install state: the mark generation distinguishes entries
	// touched by the current ReplaceProto sweep, and the scratch slices are
	// reused across sweeps so a no-op recompute stays allocation-free.
	markGen uint64
	removed []mnet.Prefix
}

// NewTable returns an empty RIB on the given clock.
func NewTable(clock vclock.Clock) *Table {
	return &Table{clock: clock, entries: make(map[mnet.Prefix]*Entry)}
}

// SyncFIB mirrors every valid best path into the simulated kernel FIB under
// the given device name, the way the System CF State element pushes routes
// into the OS (§4.3). Pass nil to stop mirroring.
func (t *Table) SyncFIB(f *FIB, device string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fib = f
	t.fibDev = device
	if f == nil {
		return
	}
	for _, e := range t.entries {
		t.mirrorLocked(e)
	}
}

// OnChange installs a change listener invoked (without the table lock held
// by value snapshot) after each mutation. Pass nil to remove.
func (t *Table) OnChange(fn func(ChangeKind, Entry)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onChange = fn
}

// Upsert installs or replaces the route for e.Dst. It returns the change
// kind that occurred.
func (t *Table) Upsert(e Entry) ChangeKind {
	if len(e.Paths) == 0 {
		e.Valid = false
	}
	t.mu.Lock()
	_, existed := t.entries[e.Dst]
	stored := e
	stored.Paths = append([]Path(nil), e.Paths...)
	t.entries[e.Dst] = &stored
	t.mirrorLocked(&stored)
	fn := t.onChange
	t.mu.Unlock()

	kind := Added
	if existed {
		kind = Updated
	}
	if fn != nil {
		fn(kind, stored)
	}
	return kind
}

// AddPath adds (or refreshes) one path on an existing entry, creating the
// entry if needed — the multipath accumulation primitive.
func (t *Table) AddPath(dst mnet.Prefix, proto string, seq uint16, p Path) {
	t.mu.Lock()
	e, ok := t.entries[dst]
	if !ok {
		e = &Entry{Dst: dst, Proto: proto, SeqNum: seq, Valid: true}
		t.entries[dst] = e
	}
	e.SeqNum = seq
	e.Valid = true
	replaced := false
	for i := range e.Paths {
		if e.Paths[i].NextHop == p.NextHop {
			e.Paths[i] = p
			replaced = true
			break
		}
	}
	if !replaced {
		e.Paths = append(e.Paths, p)
	}
	t.mirrorLocked(e)
	fn := t.onChange
	snapshot := *e
	snapshot.Paths = append([]Path(nil), e.Paths...)
	t.mu.Unlock()
	if fn != nil {
		fn(Updated, snapshot)
	}
}

// Lookup performs longest-prefix-match over valid entries and returns the
// matched entry's best path.
func (t *Table) Lookup(dst mnet.Addr) (Entry, Path, error) {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var bestEntry *Entry
	bestBits := -1
	for _, e := range t.entries {
		if !e.Valid || !e.Dst.Contains(dst) || e.Dst.Bits <= bestBits {
			continue
		}
		if _, ok := e.Best(now); !ok {
			continue
		}
		bestEntry = e
		bestBits = e.Dst.Bits
	}
	if bestEntry == nil {
		return Entry{}, Path{}, fmt.Errorf("%w: %v", ErrNoRoute, dst)
	}
	p, _ := bestEntry.Best(now)
	out := *bestEntry
	out.Paths = append([]Path(nil), bestEntry.Paths...)
	return out, p, nil
}

// Get returns the entry for an exact destination prefix.
func (t *Table) Get(dst mnet.Prefix) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[dst]
	if !ok {
		return Entry{}, false
	}
	out := *e
	out.Paths = append([]Path(nil), e.Paths...)
	return out, true
}

// Invalidate marks the route unusable but keeps it (with its sequence
// number) for loop-freedom checks. It reports whether a valid route was
// present.
func (t *Table) Invalidate(dst mnet.Prefix) bool {
	t.mu.Lock()
	e, ok := t.entries[dst]
	if !ok || !e.Valid {
		t.mu.Unlock()
		return false
	}
	e.Valid = false
	t.mirrorLocked(e)
	fn := t.onChange
	snapshot := *e
	t.mu.Unlock()
	if fn != nil {
		fn(Invalidated, snapshot)
	}
	return true
}

// InvalidatePath drops the path through nextHop from the entry for dst,
// invalidating the entry when its last path goes. It reports whether the
// entry remains valid.
func (t *Table) InvalidatePath(dst mnet.Prefix, nextHop mnet.Addr) (remains bool) {
	t.mu.Lock()
	e, ok := t.entries[dst]
	if !ok {
		t.mu.Unlock()
		return false
	}
	kept := e.Paths[:0]
	for _, p := range e.Paths {
		if p.NextHop != nextHop {
			kept = append(kept, p)
		}
	}
	e.Paths = kept
	if len(e.Paths) == 0 {
		e.Valid = false
	}
	remains = e.Valid
	t.mirrorLocked(e)
	fn := t.onChange
	snapshot := *e
	snapshot.Paths = append([]Path(nil), e.Paths...)
	t.mu.Unlock()
	if fn != nil {
		kind := Updated
		if !remains {
			kind = Invalidated
		}
		fn(kind, snapshot)
	}
	return remains
}

// InvalidateVia invalidates every route whose best path uses nextHop —
// the route-invalidation sweep run on link-break events. It returns the
// affected destinations.
func (t *Table) InvalidateVia(nextHop mnet.Addr) []mnet.Prefix {
	t.mu.Lock()
	var affected []mnet.Prefix
	for dst, e := range t.entries {
		if !e.Valid {
			continue
		}
		uses := false
		for _, p := range e.Paths {
			if p.NextHop == nextHop {
				uses = true
				break
			}
		}
		if uses {
			affected = append(affected, dst)
		}
	}
	t.mu.Unlock()
	sort.Slice(affected, func(i, j int) bool { return affected[i].Addr.Less(affected[j].Addr) })
	for _, dst := range affected {
		t.InvalidatePath(dst, nextHop)
	}
	return affected
}

// Remove deletes the entry entirely.
func (t *Table) Remove(dst mnet.Prefix) bool {
	t.mu.Lock()
	e, ok := t.entries[dst]
	if !ok {
		t.mu.Unlock()
		return false
	}
	delete(t.entries, dst)
	if t.fib != nil {
		t.fib.Del(dst)
	}
	fn := t.onChange
	snapshot := *e
	t.mu.Unlock()
	if fn != nil {
		fn(Removed, snapshot)
	}
	return true
}

// ExtendLifetime pushes the expiry of every path through nextHop (or all
// paths when nextHop is the zero Addr) on the entry for dst out to at least
// now+d. Reactive protocols call this on ROUTE_UPDATE events.
func (t *Table) ExtendLifetime(dst mnet.Prefix, nextHop mnet.Addr, d time.Duration) bool {
	deadline := t.clock.Now().Add(d)
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[dst]
	if !ok || !e.Valid {
		return false
	}
	touched := false
	for i := range e.Paths {
		if !nextHop.IsUnspecified() && e.Paths[i].NextHop != nextHop {
			continue
		}
		if e.Paths[i].Expires.IsZero() || e.Paths[i].Expires.Before(deadline) {
			e.Paths[i].Expires = deadline
		}
		touched = true
	}
	return touched
}

// PurgeExpired drops expired paths and invalidates entries left with none.
// It returns the number of entries invalidated.
func (t *Table) PurgeExpired() int {
	now := t.clock.Now()
	t.mu.Lock()
	var dead []mnet.Prefix
	for dst, e := range t.entries {
		if !e.Valid {
			continue
		}
		kept := e.Paths[:0]
		for _, p := range e.Paths {
			if p.Expires.IsZero() || p.Expires.After(now) {
				kept = append(kept, p)
			}
		}
		e.Paths = kept
		if len(e.Paths) == 0 {
			dead = append(dead, dst)
		}
	}
	t.mu.Unlock()
	sort.Slice(dead, func(i, j int) bool { return dead[i].Addr.Less(dead[j].Addr) })
	for _, dst := range dead {
		t.Invalidate(dst)
	}
	return len(dead)
}

// Entries returns all entries (valid and invalid) sorted by destination.
func (t *Table) Entries() []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		c := *e
		c.Paths = append([]Path(nil), e.Paths...)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dst.Addr != out[j].Dst.Addr {
			return out[i].Dst.Addr.Less(out[j].Dst.Addr)
		}
		return out[i].Dst.Bits < out[j].Dst.Bits
	})
	return out
}

// ValidCount returns the number of valid entries.
func (t *Table) ValidCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, e := range t.entries {
		if e.Valid {
			n++
		}
	}
	return n
}

// Clear removes every entry (protocol shutdown).
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for dst := range t.entries {
		if t.fib != nil {
			t.fib.Del(dst)
		}
		delete(t.entries, dst)
	}
}

// ProtoRoute is one desired route in the batch diff-install API
// (ReplaceProto / RefreshProto): a flat single-path value — no per-entry
// slice — so protocols can assemble whole desired route sets in reusable
// scratch buffers without allocating.
type ProtoRoute struct {
	Dst     mnet.Prefix
	NextHop mnet.Addr
	Metric  int       // hop count
	Expires time.Time // zero means no expiry
}

// ReplaceStats reports what a batch diff-install actually did. A recompute
// that changed nothing shows up as pure Refreshed/Kept counts: no change
// callbacks fired, no FIB writes issued.
type ReplaceStats struct {
	Added     int // entries created
	Updated   int // entries whose path, metric or validity actually changed
	Refreshed int // identical but for lifetime: expiry advanced in place, silently
	Kept      int // RefreshProto only: an existing better-or-equal route was kept
	Removed   int // ReplaceProto only: proto-owned entries absent from desired
}

// changeRec is a deferred change notification, collected under the table
// lock and fired after it is released.
type changeRec struct {
	kind ChangeKind
	snap Entry
}

// ReplaceProto atomically diff-installs the authoritative route set for
// proto — the install half of an incremental route recompute. Entries whose
// path actually changed are upserted; entries identical but for lifetime
// have their expiry advanced in place without firing the change callback or
// re-mirroring the FIB; entries owned by proto that are absent from desired
// are removed (other protocols' entries are never touched). The change
// stream therefore carries only real routing changes: a full recompute that
// alters nothing is completely silent and allocation-free.
//
// Desired entries are single-path; multipath accumulation stays on AddPath.
//
//mk:hotpath
func (t *Table) ReplaceProto(proto string, desired []ProtoRoute) ReplaceStats {
	return t.installBatch(proto, desired, true)
}

// RefreshProto is the non-authoritative variant of ReplaceProto used by
// periodic refreshes that do not own the whole table (ZRP's intrazone IARP
// refresh): nothing is removed, and a desired route only displaces an
// existing valid one when it is strictly better (lower metric) — otherwise
// the existing route is kept and its path lifetimes are extended to at
// least the desired expiry.
//
//mk:hotpath
func (t *Table) RefreshProto(proto string, desired []ProtoRoute) ReplaceStats {
	return t.installBatch(proto, desired, false)
}

//mk:hotpath
func (t *Table) installBatch(proto string, desired []ProtoRoute, replace bool) ReplaceStats {
	var stats ReplaceStats
	now := t.clock.Now()
	t.mu.Lock()
	t.markGen++
	gen := t.markGen
	fn := t.onChange
	var changes []changeRec
	for i := range desired {
		d := &desired[i]
		e, ok := t.entries[d.Dst]
		if !ok {
			//mk:allow hotalloc new destination appeared — topology change, cold
			e = &Entry{
				Dst: d.Dst,
				//mk:allow hotalloc first path of a new destination, same cold edge
				Paths: []Path{{NextHop: d.NextHop, Metric: d.Metric, Expires: d.Expires}},
				Valid: true,
				Proto: proto,
				mark:  gen,
			}
			t.entries[d.Dst] = e
			t.mirrorLocked(e)
			stats.Added++
			if fn != nil {
				//mk:allow hotalloc change notification rides the cold topology-change edge
				changes = append(changes, changeRec{Added, snapshotEntry(e)})
			}
			continue
		}
		e.mark = gen
		if !replace && e.Valid {
			// Keep-better: an existing route at least as short stays; only
			// its lifetimes stretch to cover the refresh horizon.
			if best, has := e.Best(now); has && best.Metric <= d.Metric {
				for pi := range e.Paths {
					if e.Paths[pi].Expires.IsZero() || e.Paths[pi].Expires.Before(d.Expires) {
						e.Paths[pi].Expires = d.Expires
					}
				}
				stats.Kept++
				continue
			}
		}
		if e.Valid && e.Proto == proto && len(e.Paths) == 1 &&
			e.Paths[0].NextHop == d.NextHop && e.Paths[0].Metric == d.Metric {
			// Same route: advance the lifetime in place. The FIB carries no
			// expiry and listeners see no routing change, so both stay quiet.
			if replace || d.Expires.After(e.Paths[0].Expires) {
				e.Paths[0].Expires = d.Expires
			}
			stats.Refreshed++
			continue
		}
		// The route genuinely changed: rewrite the entry in place, reusing
		// its path slice when possible.
		kind := Updated
		if !e.Valid {
			kind = Added
		}
		e.Proto = proto
		e.Valid = true
		e.SeqNum = 0
		if cap(e.Paths) > 0 {
			e.Paths = e.Paths[:1]
			e.Paths[0] = Path{NextHop: d.NextHop, Metric: d.Metric, Expires: d.Expires}
		} else {
			//mk:allow hotalloc route change is the cold edge; steady-state recomputes never reach it
			e.Paths = []Path{{NextHop: d.NextHop, Metric: d.Metric, Expires: d.Expires}}
		}
		t.mirrorLocked(e)
		stats.Updated++
		if fn != nil {
			//mk:allow hotalloc change notification rides the cold route-change edge
			changes = append(changes, changeRec{kind, snapshotEntry(e)})
		}
	}
	if replace {
		removed := t.removed[:0]
		for dst, e := range t.entries {
			if e.Proto == proto && e.mark != gen {
				//mk:allow hotalloc vanished destination — topology shrink, cold
				removed = append(removed, dst)
			}
		}
		t.removed = removed[:0]
		if len(removed) > 0 {
			sortPrefixes(removed)
			for _, dst := range removed {
				e := t.entries[dst]
				delete(t.entries, dst)
				if t.fib != nil {
					t.fib.Del(dst)
				}
				stats.Removed++
				if fn != nil {
					//mk:allow hotalloc change notification rides the cold topology-shrink edge
					changes = append(changes, changeRec{Removed, snapshotEntry(e)})
				}
			}
		}
	}
	t.mu.Unlock()
	for i := range changes {
		fn(changes[i].kind, changes[i].snap)
	}
	return stats
}

// snapshotEntry deep-copies an entry for a change notification. Caller
// holds t.mu.
func snapshotEntry(e *Entry) Entry {
	snap := *e
	//mk:allow hotalloc change-notification deep copy; rides the cold change edge only
	snap.Paths = append([]Path(nil), e.Paths...)
	return snap
}

// sortPrefixes orders prefixes by (address, length) — the table's canonical
// order, keeping removal notifications deterministic.
func sortPrefixes(ps []mnet.Prefix) {
	//mk:allow hotalloc sort.Slice closure on the topology-shrink edge; steady-state recomputes remove nothing
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Addr != ps[j].Addr {
			return ps[i].Addr.Less(ps[j].Addr)
		}
		return ps[i].Bits < ps[j].Bits
	})
}

// mirrorLocked pushes the entry's current best path into the FIB (or
// removes it). Caller holds t.mu.
func (t *Table) mirrorLocked(e *Entry) {
	if t.fib == nil {
		return
	}
	if !e.Valid {
		t.fib.Del(e.Dst)
		return
	}
	p, ok := e.Best(t.clock.Now())
	if !ok {
		t.fib.Del(e.Dst)
		return
	}
	t.fib.Set(FIBRoute{Dst: e.Dst, NextHop: p.NextHop, Metric: p.Metric, Device: t.fibDev, Proto: e.Proto})
}
