package route

import (
	"sort"
	"sync"

	"manetkit/internal/mnet"
)

// FIBRoute is one forwarding entry in the simulated kernel table.
type FIBRoute struct {
	Dst     mnet.Prefix
	NextHop mnet.Addr
	Metric  int
	Device  string
	Proto   string
}

// FIB simulates the kernel forwarding table. The System CF State element
// exposes it to protocols ("operations to manipulate the kernel routing
// table", §4.3), and the packet filter consults it to forward data packets.
type FIB struct {
	mu     sync.Mutex
	routes map[mnet.Prefix]FIBRoute
	ops    uint64 // mutations applied (Set + successful Del)
}

// NewFIB returns an empty forwarding table.
func NewFIB() *FIB {
	return &FIB{routes: make(map[mnet.Prefix]FIBRoute)}
}

// Set installs or replaces the route for r.Dst.
func (f *FIB) Set(r FIBRoute) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.routes[r.Dst] = r
	f.ops++
}

// Del removes the route for dst. It reports whether a route was present.
func (f *FIB) Del(dst mnet.Prefix) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.routes[dst]
	delete(f.routes, dst)
	if ok {
		f.ops++
	}
	return ok
}

// Ops returns the number of mutations applied to the table since creation.
// Diff-install correctness tests use it to prove a steady-state recompute
// leaves the kernel table untouched.
func (f *FIB) Ops() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Lookup performs longest-prefix-match forwarding resolution.
func (f *FIB) Lookup(dst mnet.Addr) (FIBRoute, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var best FIBRoute
	bestBits := -1
	for _, r := range f.routes {
		if r.Dst.Contains(dst) && r.Dst.Bits > bestBits {
			best = r
			bestBits = r.Dst.Bits
		}
	}
	return best, bestBits >= 0
}

// List returns all forwarding entries sorted by destination.
func (f *FIB) List() []FIBRoute {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FIBRoute, 0, len(f.routes))
	for _, r := range f.routes {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dst.Addr != out[j].Dst.Addr {
			return out[i].Dst.Addr.Less(out[j].Dst.Addr)
		}
		return out[i].Dst.Bits < out[j].Dst.Bits
	})
	return out
}

// Len returns the number of forwarding entries.
func (f *FIB) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.routes)
}

// FlushProto removes every route owned by the named protocol — used when a
// protocol is undeployed. It returns the number removed.
func (f *FIB) FlushProto(proto string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for dst, r := range f.routes {
		if r.Proto == proto {
			delete(f.routes, dst)
			n++
		}
	}
	return n
}
