package route

import (
	"testing"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/vclock"
)

func benchTable(b *testing.B, entries int) *Table {
	b.Helper()
	tb := NewTable(vclock.NewVirtual(epoch))
	for i := 0; i < entries; i++ {
		a := mnet.AddrFrom(0x0a000100 + uint32(i))
		tb.Upsert(Entry{
			Dst:   mnet.HostPrefix(a),
			Paths: []Path{{NextHop: mnet.AddrFrom(0x0a000001), Metric: 2}},
			Valid: true,
		})
	}
	return tb
}

func BenchmarkTableUpsert(b *testing.B) {
	tb := NewTable(vclock.NewVirtual(epoch))
	e := Entry{
		Dst:   mnet.HostPrefix(mnet.AddrFrom(0x0a000105)),
		Paths: []Path{{NextHop: mnet.AddrFrom(0x0a000001), Metric: 2}},
		Valid: true,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Upsert(e)
	}
}

func BenchmarkTableLookup100(b *testing.B) {
	tb := benchTable(b, 100)
	dst := mnet.AddrFrom(0x0a000100 + 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tb.Lookup(dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFIBLookup100(b *testing.B) {
	fib := NewFIB()
	for i := 0; i < 100; i++ {
		a := mnet.AddrFrom(0x0a000100 + uint32(i))
		fib.Set(FIBRoute{Dst: mnet.HostPrefix(a), NextHop: mnet.AddrFrom(0x0a000001)})
	}
	dst := mnet.AddrFrom(0x0a000100 + 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := fib.Lookup(dst); !ok {
			b.Fatal("missing route")
		}
	}
}

func BenchmarkInvalidateVia(b *testing.B) {
	via := mnet.AddrFrom(0x0a000001)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb := benchTable(b, 50)
		b.StartTimer()
		tb.InvalidateVia(via)
	}
}

func BenchmarkPurgeExpired(b *testing.B) {
	clk := vclock.NewVirtual(epoch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb := NewTable(clk)
		for j := 0; j < 50; j++ {
			a := mnet.AddrFrom(0x0a000100 + uint32(j))
			tb.Upsert(Entry{
				Dst:   mnet.HostPrefix(a),
				Paths: []Path{{NextHop: a, Expires: clk.Now().Add(time.Duration(j) * time.Millisecond)}},
				Valid: true,
			})
		}
		b.StartTimer()
		tb.PurgeExpired()
	}
}
