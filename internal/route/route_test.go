package route

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/vclock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func addr(s string) mnet.Addr   { return mnet.MustParseAddr(s) }
func host(s string) mnet.Prefix { return mnet.HostPrefix(addr(s)) }

func newTable() (*Table, *vclock.Virtual) {
	clk := vclock.NewVirtual(epoch)
	return NewTable(clk), clk
}

func TestUpsertLookup(t *testing.T) {
	tb, _ := newTable()
	kind := tb.Upsert(Entry{
		Dst:   host("10.0.0.5"),
		Paths: []Path{{NextHop: addr("10.0.0.2"), Metric: 3}},
		Valid: true,
		Proto: "dymo",
	})
	if kind != Added {
		t.Fatalf("first Upsert = %v", kind)
	}
	e, p, err := tb.Lookup(addr("10.0.0.5"))
	if err != nil {
		t.Fatal(err)
	}
	if p.NextHop != addr("10.0.0.2") || p.Metric != 3 || e.Proto != "dymo" {
		t.Fatalf("Lookup = %+v / %+v", e, p)
	}
	if kind := tb.Upsert(Entry{Dst: host("10.0.0.5"), Paths: []Path{{NextHop: addr("10.0.0.3"), Metric: 2}}, Valid: true}); kind != Updated {
		t.Fatalf("second Upsert = %v", kind)
	}
	if _, p, _ := tb.Lookup(addr("10.0.0.5")); p.NextHop != addr("10.0.0.3") {
		t.Fatal("Upsert did not replace path")
	}
}

func TestLookupNoRoute(t *testing.T) {
	tb, _ := newTable()
	if _, _, err := tb.Lookup(addr("1.2.3.4")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("Lookup on empty table = %v", err)
	}
}

func TestLongestPrefixMatch(t *testing.T) {
	tb, _ := newTable()
	tb.Upsert(Entry{
		Dst:   mnet.Prefix{Addr: addr("10.0.0.0"), Bits: 8},
		Paths: []Path{{NextHop: addr("10.0.0.1"), Metric: 5}},
		Valid: true,
	})
	tb.Upsert(Entry{
		Dst:   mnet.Prefix{Addr: addr("10.1.0.0"), Bits: 16},
		Paths: []Path{{NextHop: addr("10.0.0.2"), Metric: 2}},
		Valid: true,
	})
	if _, p, _ := tb.Lookup(addr("10.1.2.3")); p.NextHop != addr("10.0.0.2") {
		t.Fatalf("LPM chose %v", p.NextHop)
	}
	if _, p, _ := tb.Lookup(addr("10.2.0.1")); p.NextHop != addr("10.0.0.1") {
		t.Fatalf("fallback chose %v", p.NextHop)
	}
}

func TestBestPathPrefersLowerMetricAndSkipsExpired(t *testing.T) {
	tb, clk := newTable()
	tb.Upsert(Entry{
		Dst: host("10.0.0.9"),
		Paths: []Path{
			{NextHop: addr("10.0.0.2"), Metric: 4},
			{NextHop: addr("10.0.0.3"), Metric: 2, Expires: epoch.Add(10 * time.Millisecond)},
		},
		Valid: true,
	})
	if _, p, _ := tb.Lookup(addr("10.0.0.9")); p.NextHop != addr("10.0.0.3") {
		t.Fatalf("best path = %v", p.NextHop)
	}
	clk.Advance(20 * time.Millisecond)
	if _, p, _ := tb.Lookup(addr("10.0.0.9")); p.NextHop != addr("10.0.0.2") {
		t.Fatalf("after expiry best path = %v", p.NextHop)
	}
}

func TestInvalidate(t *testing.T) {
	tb, _ := newTable()
	dst := host("10.0.0.7")
	tb.Upsert(Entry{Dst: dst, Paths: []Path{{NextHop: addr("10.0.0.2")}}, Valid: true, SeqNum: 9})
	if !tb.Invalidate(dst) {
		t.Fatal("Invalidate on valid route = false")
	}
	if tb.Invalidate(dst) {
		t.Fatal("Invalidate twice = true")
	}
	if _, _, err := tb.Lookup(addr("10.0.0.7")); !errors.Is(err, ErrNoRoute) {
		t.Fatal("invalidated route still resolvable")
	}
	// Entry retained for its sequence number.
	e, ok := tb.Get(dst)
	if !ok || e.SeqNum != 9 || e.Valid {
		t.Fatalf("retained entry = %+v, %v", e, ok)
	}
}

func TestAddPathAndInvalidatePath(t *testing.T) {
	tb, _ := newTable()
	dst := host("10.0.0.8")
	tb.AddPath(dst, "dymo", 1, Path{NextHop: addr("10.0.0.2"), Metric: 3})
	tb.AddPath(dst, "dymo", 1, Path{NextHop: addr("10.0.0.3"), Metric: 2})
	tb.AddPath(dst, "dymo", 1, Path{NextHop: addr("10.0.0.2"), Metric: 4}) // refresh, not dup
	e, ok := tb.Get(dst)
	if !ok || len(e.Paths) != 2 {
		t.Fatalf("entry = %+v", e)
	}
	if remains := tb.InvalidatePath(dst, addr("10.0.0.3")); !remains {
		t.Fatal("entry should remain valid with one path left")
	}
	if _, p, _ := tb.Lookup(addr("10.0.0.8")); p.NextHop != addr("10.0.0.2") || p.Metric != 4 {
		t.Fatalf("surviving path = %+v", p)
	}
	if remains := tb.InvalidatePath(dst, addr("10.0.0.2")); remains {
		t.Fatal("entry should be invalid with no paths")
	}
}

func TestInvalidateVia(t *testing.T) {
	tb, _ := newTable()
	via := addr("10.0.0.2")
	tb.Upsert(Entry{Dst: host("10.0.0.5"), Paths: []Path{{NextHop: via, Metric: 2}}, Valid: true})
	tb.Upsert(Entry{Dst: host("10.0.0.6"), Paths: []Path{{NextHop: via, Metric: 3}}, Valid: true})
	tb.Upsert(Entry{Dst: host("10.0.0.7"), Paths: []Path{{NextHop: addr("10.0.0.3"), Metric: 1}}, Valid: true})
	affected := tb.InvalidateVia(via)
	if len(affected) != 2 {
		t.Fatalf("affected = %v", affected)
	}
	if tb.ValidCount() != 1 {
		t.Fatalf("ValidCount = %d", tb.ValidCount())
	}
	// Multipath entry survives losing one of two next hops.
	tb.Upsert(Entry{Dst: host("10.0.0.9"), Paths: []Path{
		{NextHop: via, Metric: 2}, {NextHop: addr("10.0.0.4"), Metric: 3},
	}, Valid: true})
	tb.InvalidateVia(via)
	if _, p, err := tb.Lookup(addr("10.0.0.9")); err != nil || p.NextHop != addr("10.0.0.4") {
		t.Fatalf("multipath survivor = %+v, %v", p, err)
	}
}

func TestExtendLifetimeAndPurge(t *testing.T) {
	tb, clk := newTable()
	dst := host("10.0.0.5")
	tb.Upsert(Entry{Dst: dst, Paths: []Path{{NextHop: addr("10.0.0.2"), Expires: epoch.Add(50 * time.Millisecond)}}, Valid: true})
	if !tb.ExtendLifetime(dst, mnet.Addr{}, 200*time.Millisecond) {
		t.Fatal("ExtendLifetime = false")
	}
	clk.Advance(100 * time.Millisecond)
	if n := tb.PurgeExpired(); n != 0 {
		t.Fatalf("purged %d after extension", n)
	}
	clk.Advance(150 * time.Millisecond)
	if n := tb.PurgeExpired(); n != 1 {
		t.Fatalf("purged %d, want 1", n)
	}
	if tb.ValidCount() != 0 {
		t.Fatal("expired route still valid")
	}
	if tb.ExtendLifetime(dst, mnet.Addr{}, time.Second) {
		t.Fatal("ExtendLifetime on invalid entry = true")
	}
}

func TestRemoveAndClear(t *testing.T) {
	tb, _ := newTable()
	tb.Upsert(Entry{Dst: host("10.0.0.5"), Paths: []Path{{NextHop: addr("10.0.0.2")}}, Valid: true})
	if !tb.Remove(host("10.0.0.5")) {
		t.Fatal("Remove = false")
	}
	if tb.Remove(host("10.0.0.5")) {
		t.Fatal("double Remove = true")
	}
	tb.Upsert(Entry{Dst: host("10.0.0.6"), Paths: []Path{{NextHop: addr("10.0.0.2")}}, Valid: true})
	tb.Clear()
	if len(tb.Entries()) != 0 {
		t.Fatal("Clear left entries")
	}
}

func TestOnChangeNotifications(t *testing.T) {
	tb, _ := newTable()
	var kinds []ChangeKind
	tb.OnChange(func(k ChangeKind, e Entry) { kinds = append(kinds, k) })
	dst := host("10.0.0.5")
	tb.Upsert(Entry{Dst: dst, Paths: []Path{{NextHop: addr("10.0.0.2")}}, Valid: true})
	tb.Upsert(Entry{Dst: dst, Paths: []Path{{NextHop: addr("10.0.0.3")}}, Valid: true})
	tb.Invalidate(dst)
	tb.Remove(dst)
	want := []ChangeKind{Added, Updated, Invalidated, Removed}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	tb.OnChange(nil)
	tb.Upsert(Entry{Dst: dst, Paths: []Path{{NextHop: addr("10.0.0.2")}}, Valid: true})
	if len(kinds) != len(want) {
		t.Fatal("listener fired after removal")
	}
}

func TestFIBMirroring(t *testing.T) {
	tb, _ := newTable()
	fib := NewFIB()
	tb.SyncFIB(fib, "emu0")
	dst := host("10.0.0.5")
	tb.Upsert(Entry{Dst: dst, Paths: []Path{{NextHop: addr("10.0.0.2"), Metric: 2}}, Valid: true, Proto: "olsr"})
	r, ok := fib.Lookup(addr("10.0.0.5"))
	if !ok || r.NextHop != addr("10.0.0.2") || r.Device != "emu0" || r.Proto != "olsr" {
		t.Fatalf("FIB route = %+v, %v", r, ok)
	}
	tb.Invalidate(dst)
	if _, ok := fib.Lookup(addr("10.0.0.5")); ok {
		t.Fatal("invalidated route still in FIB")
	}
	// Late sync mirrors existing entries.
	tb2, _ := newTable()
	tb2.Upsert(Entry{Dst: dst, Paths: []Path{{NextHop: addr("10.0.0.3")}}, Valid: true})
	fib2 := NewFIB()
	tb2.SyncFIB(fib2, "emu1")
	if _, ok := fib2.Lookup(addr("10.0.0.5")); !ok {
		t.Fatal("SyncFIB did not mirror existing entries")
	}
}

func TestFIBBasics(t *testing.T) {
	fib := NewFIB()
	fib.Set(FIBRoute{Dst: mnet.Prefix{Addr: addr("10.0.0.0"), Bits: 8}, NextHop: addr("10.0.0.1"), Proto: "olsr"})
	fib.Set(FIBRoute{Dst: host("10.1.2.3"), NextHop: addr("10.0.0.2"), Proto: "dymo"})
	if r, ok := fib.Lookup(addr("10.1.2.3")); !ok || r.NextHop != addr("10.0.0.2") {
		t.Fatalf("LPM = %+v, %v", r, ok)
	}
	if fib.Len() != 2 || len(fib.List()) != 2 {
		t.Fatalf("Len = %d", fib.Len())
	}
	if n := fib.FlushProto("dymo"); n != 1 {
		t.Fatalf("FlushProto = %d", n)
	}
	if !fib.Del(mnet.Prefix{Addr: addr("10.0.0.0"), Bits: 8}) {
		t.Fatal("Del = false")
	}
	if fib.Del(host("9.9.9.9")) {
		t.Fatal("Del absent = true")
	}
}

func TestLookupInvariantProperty(t *testing.T) {
	// Property: for any set of valid host routes, Lookup(d) succeeds exactly
	// when d was inserted, and returns that entry.
	f := func(raw []uint32) bool {
		tb, _ := newTable()
		seen := make(map[mnet.Addr]bool)
		for _, u := range raw {
			a := mnet.AddrFrom(u)
			if a.IsBroadcast() || a.IsUnspecified() {
				continue
			}
			seen[a] = true
			tb.Upsert(Entry{Dst: mnet.HostPrefix(a), Paths: []Path{{NextHop: a, Metric: 1}}, Valid: true})
		}
		for a := range seen {
			e, _, err := tb.Lookup(a)
			if err != nil || e.Dst != mnet.HostPrefix(a) {
				return false
			}
		}
		_, _, err := tb.Lookup(mnet.Broadcast)
		return errors.Is(err, ErrNoRoute)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEntriesSortedAndCopied(t *testing.T) {
	tb, _ := newTable()
	tb.Upsert(Entry{Dst: host("10.0.0.9"), Paths: []Path{{NextHop: addr("10.0.0.2")}}, Valid: true})
	tb.Upsert(Entry{Dst: host("10.0.0.1"), Paths: []Path{{NextHop: addr("10.0.0.2")}}, Valid: true})
	es := tb.Entries()
	if len(es) != 2 || !es[0].Dst.Addr.Less(es[1].Dst.Addr) {
		t.Fatalf("Entries = %+v", es)
	}
	es[0].Paths[0].NextHop = addr("99.9.9.9")
	if _, p, _ := tb.Lookup(addr("10.0.0.1")); p.NextHop == addr("99.9.9.9") {
		t.Fatal("Entries aliases internal storage")
	}
}

func TestUpsertEmptyPathsIsInvalid(t *testing.T) {
	tb, _ := newTable()
	tb.Upsert(Entry{Dst: host("10.0.0.5"), Valid: true})
	if tb.ValidCount() != 0 {
		t.Fatal("entry with no paths counted valid")
	}
}

// --- batch diff-install (ReplaceProto / RefreshProto) ---

func pr(dst, via string, metric int, exp time.Time) ProtoRoute {
	return ProtoRoute{Dst: host(dst), NextHop: addr(via), Metric: metric, Expires: exp}
}

func TestReplaceProtoDiffInstall(t *testing.T) {
	tb, clk := newTable()
	var events []ChangeKind
	tb.OnChange(func(k ChangeKind, _ Entry) { events = append(events, k) })
	exp := clk.Now().Add(time.Minute)

	st := tb.ReplaceProto("olsr", []ProtoRoute{
		pr("10.0.0.2", "10.0.0.2", 1, exp),
		pr("10.0.0.3", "10.0.0.2", 2, exp),
	})
	if st.Added != 2 || st.Updated != 0 || st.Removed != 0 {
		t.Fatalf("initial install stats = %+v", st)
	}
	if len(events) != 2 || events[0] != Added || events[1] != Added {
		t.Fatalf("initial install events = %v", events)
	}

	// Identical recompute with a later expiry: silent refresh, no events.
	events = nil
	exp2 := clk.Now().Add(2 * time.Minute)
	st = tb.ReplaceProto("olsr", []ProtoRoute{
		pr("10.0.0.2", "10.0.0.2", 1, exp2),
		pr("10.0.0.3", "10.0.0.2", 2, exp2),
	})
	if st.Refreshed != 2 || st.Added+st.Updated+st.Removed != 0 {
		t.Fatalf("steady-state stats = %+v", st)
	}
	if len(events) != 0 {
		t.Fatalf("steady-state recompute fired events: %v", events)
	}
	// The refresh really did advance the lifetime.
	e, _ := tb.Get(host("10.0.0.3"))
	if !e.Paths[0].Expires.Equal(exp2) {
		t.Fatalf("expiry not refreshed: %v", e.Paths[0].Expires)
	}

	// One route changes next hop, one vanishes, one appears.
	events = nil
	st = tb.ReplaceProto("olsr", []ProtoRoute{
		pr("10.0.0.2", "10.0.0.2", 1, exp2),
		pr("10.0.0.3", "10.0.0.4", 2, exp2), // re-routed
		pr("10.0.0.5", "10.0.0.2", 3, exp2), // new
	})
	if st.Refreshed != 1 || st.Updated != 1 || st.Added != 1 || st.Removed != 0 {
		t.Fatalf("change stats = %+v", st)
	}
	st = tb.ReplaceProto("olsr", []ProtoRoute{
		pr("10.0.0.2", "10.0.0.2", 1, exp2),
	})
	if st.Removed != 2 || st.Refreshed != 1 {
		t.Fatalf("shrink stats = %+v", st)
	}
	if len(events) != 4 { // Updated, Added, Removed, Removed
		t.Fatalf("events = %v", events)
	}
	if _, ok := tb.Get(host("10.0.0.5")); ok {
		t.Fatal("vanished route still present")
	}
}

func TestReplaceProtoScopedToProto(t *testing.T) {
	tb, clk := newTable()
	exp := clk.Now().Add(time.Minute)
	tb.Upsert(Entry{Dst: host("10.0.0.9"), Paths: []Path{{NextHop: addr("10.0.0.8"), Metric: 4}}, Valid: true, Proto: "dymo"})
	tb.ReplaceProto("olsr", []ProtoRoute{pr("10.0.0.2", "10.0.0.2", 1, exp)})
	if _, ok := tb.Get(host("10.0.0.9")); !ok {
		t.Fatal("ReplaceProto removed another protocol's entry")
	}
	// But a desired entry does take over a prefix previously owned elsewhere.
	tb.ReplaceProto("olsr", []ProtoRoute{
		pr("10.0.0.2", "10.0.0.2", 1, exp),
		pr("10.0.0.9", "10.0.0.2", 2, exp),
	})
	e, _ := tb.Get(host("10.0.0.9"))
	if e.Proto != "olsr" || e.Paths[0].NextHop != addr("10.0.0.2") {
		t.Fatalf("takeover entry = %+v", e)
	}
}

func TestReplaceProtoRevalidatesInvalid(t *testing.T) {
	tb, clk := newTable()
	exp := clk.Now().Add(time.Minute)
	tb.ReplaceProto("olsr", []ProtoRoute{pr("10.0.0.2", "10.0.0.2", 1, exp)})
	tb.Invalidate(host("10.0.0.2"))
	var kinds []ChangeKind
	tb.OnChange(func(k ChangeKind, _ Entry) { kinds = append(kinds, k) })
	st := tb.ReplaceProto("olsr", []ProtoRoute{pr("10.0.0.2", "10.0.0.2", 1, exp)})
	if st.Updated != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(kinds) != 1 || kinds[0] != Added {
		t.Fatalf("revalidation kinds = %v", kinds)
	}
	if e, _ := tb.Get(host("10.0.0.2")); !e.Valid {
		t.Fatal("entry still invalid")
	}
}

func TestReplaceProtoMirrorsFIBOnlyOnChange(t *testing.T) {
	tb, clk := newTable()
	fib := NewFIB()
	tb.SyncFIB(fib, "mk0")
	exp := clk.Now().Add(time.Minute)
	tb.ReplaceProto("olsr", []ProtoRoute{pr("10.0.0.2", "10.0.0.2", 1, exp)})
	if _, ok := fib.Lookup(addr("10.0.0.2")); !ok {
		t.Fatal("FIB not mirrored on install")
	}
	ops := fib.Ops()
	tb.ReplaceProto("olsr", []ProtoRoute{pr("10.0.0.2", "10.0.0.2", 1, clk.Now().Add(2*time.Minute))})
	if got := fib.Ops(); got != ops {
		t.Fatalf("steady-state refresh wrote the FIB: ops %d -> %d", ops, got)
	}
	tb.ReplaceProto("olsr", nil)
	if _, ok := fib.Lookup(addr("10.0.0.2")); ok {
		t.Fatal("removed route still in FIB")
	}
}

func TestRefreshProtoKeepsBetterAndNeverRemoves(t *testing.T) {
	tb, clk := newTable()
	// A reactive (interzone) route far outside the zone refresh set.
	tb.Upsert(Entry{Dst: host("10.0.9.9"), Paths: []Path{{NextHop: addr("10.0.0.3"), Metric: 7}}, Valid: true, Proto: "zrp"})
	// A shorter reactive route that the zone would cover at metric 2.
	reactiveExp := clk.Now().Add(30 * time.Second)
	tb.Upsert(Entry{Dst: host("10.0.0.4"), Paths: []Path{{NextHop: addr("10.0.0.4"), Metric: 1, Expires: reactiveExp}}, Valid: true, Proto: "zrp"})

	var events int
	tb.OnChange(func(ChangeKind, Entry) { events++ })
	zoneExp := clk.Now().Add(time.Minute)
	st := tb.RefreshProto("zrp", []ProtoRoute{
		pr("10.0.0.2", "10.0.0.2", 1, zoneExp),
		pr("10.0.0.4", "10.0.0.7", 2, zoneExp), // worse than the reactive metric-1 route
	})
	if st.Added != 1 || st.Kept != 1 || st.Removed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if events != 1 {
		t.Fatalf("events = %d", events)
	}
	// The reactive route survived with its lifetime extended.
	e, _ := tb.Get(host("10.0.0.4"))
	if e.Paths[0].NextHop != addr("10.0.0.4") || e.Paths[0].Metric != 1 {
		t.Fatalf("better route displaced: %+v", e)
	}
	if !e.Paths[0].Expires.Equal(zoneExp) {
		t.Fatalf("kept route lifetime not extended: %v", e.Paths[0].Expires)
	}
	// The out-of-zone route was not touched.
	if _, ok := tb.Get(host("10.0.9.9")); !ok {
		t.Fatal("RefreshProto removed an out-of-set route")
	}
	// Steady-state refresh is silent.
	events = 0
	st = tb.RefreshProto("zrp", []ProtoRoute{
		pr("10.0.0.2", "10.0.0.2", 1, zoneExp),
		pr("10.0.0.4", "10.0.0.7", 2, zoneExp),
	})
	if events != 0 || st.Added+st.Updated != 0 {
		t.Fatalf("steady-state refresh: events=%d stats=%+v", events, st)
	}
}

func TestReplaceProtoSteadyStateAllocs(t *testing.T) {
	tb, clk := newTable()
	desired := make([]ProtoRoute, 0, 256)
	for i := 0; i < 256; i++ {
		a := mnet.AddrFrom(0x0a000100 + uint32(i))
		desired = append(desired, ProtoRoute{Dst: mnet.HostPrefix(a), NextHop: mnet.AddrFrom(0x0a000001), Metric: 2, Expires: clk.Now().Add(time.Minute)})
	}
	tb.ReplaceProto("olsr", desired)
	tb.ReplaceProto("olsr", desired) // warm the removal scratch
	allocs := testing.AllocsPerRun(100, func() {
		tb.ReplaceProto("olsr", desired)
	})
	if allocs > 0 {
		t.Fatalf("steady-state ReplaceProto allocates %.1f times per call", allocs)
	}
}
