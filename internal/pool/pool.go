// Package pool implements the worker-pool ("threadpool") utility component
// that the paper lists among MANETKit's reusable building blocks (Table 3).
//
// The thread-per-n-messages concurrency model (§4.4) is realised by feeding
// shepherded events through a Pool of fixed size: n workers drain a shared
// FIFO, giving a midpoint between the single-threaded and thread-per-message
// models.
package pool

import (
	"errors"
	"fmt"
	"sync"

	"manetkit/internal/queue"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("pool: closed")

// Stats describes pool activity.
type Stats struct {
	Submitted uint64
	Completed uint64
	Workers   int
}

// Pool runs submitted tasks on a fixed set of worker goroutines, in FIFO
// submission order. Construct with New; the zero value is unusable.
type Pool struct {
	tasks *queue.FIFO[func()]

	mu        sync.Mutex
	submitted uint64
	completed uint64
	workers   int
	closed    bool
	wg        sync.WaitGroup
}

// New starts a pool of size workers. queueBound bounds the backlog
// (<= 0 means unbounded).
func New(size, queueBound int) (*Pool, error) {
	if size <= 0 {
		return nil, fmt.Errorf("pool: invalid size %d", size)
	}
	p := &Pool{
		tasks:   queue.NewFIFO[func()](queueBound),
		workers: size,
	}
	p.wg.Add(size)
	for i := 0; i < size; i++ {
		go p.worker()
	}
	return p, nil
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		task, err := p.tasks.Pop()
		if err != nil {
			return
		}
		task()
		p.mu.Lock()
		p.completed++
		p.mu.Unlock()
	}
}

// Submit enqueues f for execution. It returns ErrClosed after Close, or
// queue.ErrFull if the backlog bound is reached.
func (p *Pool) Submit(f func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.mu.Unlock()
	if err := p.tasks.Push(f); err != nil {
		if errors.Is(err, queue.ErrClosed) {
			return ErrClosed
		}
		return err
	}
	p.mu.Lock()
	p.submitted++
	p.mu.Unlock()
	return nil
}

// Close stops accepting tasks, waits for queued tasks to finish, then
// returns. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.tasks.Close()
	p.wg.Wait()
}

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{Submitted: p.submitted, Completed: p.completed, Workers: p.workers}
}
