package pool

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0); err == nil {
		t.Fatal("New(0) succeeded")
	}
	if _, err := New(-3, 0); err == nil {
		t.Fatal("New(-3) succeeded")
	}
}

func TestPoolRunsAllTasks(t *testing.T) {
	p, err := New(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	const tasks = 1000
	for i := 0; i < tasks; i++ {
		if err := p.Submit(func() { n.Add(1) }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	p.Close()
	if n.Load() != tasks {
		t.Fatalf("ran %d tasks, want %d", n.Load(), tasks)
	}
	st := p.Stats()
	if st.Submitted != tasks || st.Completed != tasks || st.Workers != 4 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p, err := New(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := p.Submit(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v", err)
	}
	p.Close() // idempotent
}

func TestPoolSingleWorkerIsFIFO(t *testing.T) {
	p, err := New(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		p.Submit(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	p.Close()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
	if len(order) != 100 {
		t.Fatalf("ran %d tasks", len(order))
	}
}

func TestPoolConcurrencyActuallyParallel(t *testing.T) {
	p, err := New(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Two tasks that each wait for the other prove two workers run at once.
	a, b := make(chan struct{}), make(chan struct{})
	p.Submit(func() { close(a); <-b })
	p.Submit(func() { <-a; close(b) })
	p.Close() // waits; deadlock here would fail the test via timeout
}

func TestPoolConcurrentSubmitters(t *testing.T) {
	p, err := New(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := p.Submit(func() { n.Add(1) }); err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	p.Close()
	if n.Load() != 8*200 {
		t.Fatalf("ran %d tasks", n.Load())
	}
}
