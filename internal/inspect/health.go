package inspect

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/metrics"
	"manetkit/internal/route"
)

// Level grades a health finding.
type Level string

// Finding severities.
const (
	LevelWarn Level = "warn"
	LevelCrit Level = "critical"
)

// Finding is one watchdog observation.
type Finding struct {
	Node   string `json:"node,omitempty"`
	Unit   string `json:"unit,omitempty"`
	Check  string `json:"check"`
	Level  Level  `json:"level"`
	Detail string `json:"detail"`
}

// Report is the health roll-up of one Monitor.Check pass: empty findings
// means every watchdog was satisfied.
type Report struct {
	// T is the virtual-clock offset of the check.
	T        time.Duration `json:"t_ns"`
	Findings []Finding     `json:"findings"`
}

// Healthy reports whether the check produced no findings.
func (r Report) Healthy() bool { return len(r.Findings) == 0 }

// String renders the report as one line per finding (or "healthy").
func (r Report) String() string {
	if r.Healthy() {
		return fmt.Sprintf("t=%s healthy\n", r.T)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "t=%s %d findings\n", r.T, len(r.Findings))
	for _, f := range r.Findings {
		loc := f.Node
		if f.Unit != "" {
			loc += "/" + f.Unit
		}
		fmt.Fprintf(&b, "  [%s] %-18s %-22s %s\n", f.Level, f.Check, loc, f.Detail)
	}
	return b.String()
}

// MonitorConfig tunes the watchdog thresholds.
type MonitorConfig struct {
	// QueueWatermark flags dedicated-queue depths at or above it
	// (default 512 — half the default queue bound).
	QueueWatermark int
	// DropRatio flags a node whose dropped/emitted ratio over the check
	// window exceeds it (default 0.5).
	DropRatio float64
	// ChurnThreshold flags a node observing more neighbourhood changes
	// than it within one check window (default 16).
	ChurnThreshold int
}

func (c *MonitorConfig) fill() {
	if c.QueueWatermark <= 0 {
		c.QueueWatermark = 512
	}
	if c.DropRatio <= 0 {
		c.DropRatio = 0.5
	}
	if c.ChurnThreshold <= 0 {
		c.ChurnThreshold = 16
	}
}

// Target is one node under health watch: its manager and, optionally, the
// protocol route tables to check for staleness.
type Target struct {
	Node string
	Mgr  *core.Manager
	// Tables maps a protocol name to its route table; stale-route checks
	// are skipped when empty.
	Tables map[string]*route.Table
}

type watched struct {
	Target
	last    core.ManagerStats
	hasLast bool
	churn   int
}

// Monitor rolls per-unit watchdogs over the existing observability
// surfaces into a health report: dedicated-queue watermarks and overflow
// (metrics gauges/counters), dispatch-progress stalls and drop ratios
// (manager counters between successive checks), route-table staleness
// (valid entries whose every path has expired) and neighbour churn
// (NHOOD_CHANGE events per check window). It owns no goroutines — call
// Check from wherever paces the deployment (a timer, an HTTP handler, the
// end of a chaos run).
type Monitor struct {
	epoch time.Time
	reg   *metrics.Registry
	cfg   MonitorConfig

	mu          sync.Mutex
	targets     []*watched
	lastDropped map[string]uint64
}

// NewMonitor creates a monitor reading cluster-wide instruments from reg
// (nil disables the metrics-based checks). Report timestamps are offsets
// from epoch.
func NewMonitor(epoch time.Time, reg *metrics.Registry, cfg MonitorConfig) *Monitor {
	cfg.fill()
	return &Monitor{epoch: epoch, reg: reg, cfg: cfg, lastDropped: make(map[string]uint64)}
}

// Watch adds a node to the monitor and subscribes to its neighbourhood
// change events for churn accounting.
func (m *Monitor) Watch(t Target) {
	if t.Node == "" && t.Mgr != nil {
		t.Node = t.Mgr.Node().String()
	}
	w := &watched{Target: t}
	m.mu.Lock()
	m.targets = append(m.targets, w)
	m.mu.Unlock()
	if t.Mgr != nil {
		t.Mgr.SubscribeContext(event.NhoodChange, func(*event.Event) {
			m.mu.Lock()
			w.churn++
			m.mu.Unlock()
		})
	}
}

// Check runs every watchdog once against the current state, using now (the
// deployment's virtual clock) for route-expiry evaluation, and resets the
// per-window accounting. Findings are sorted for deterministic output.
func (m *Monitor) Check(now time.Time) Report {
	r := Report{T: now.Sub(m.epoch)}

	// Cluster-wide queue watermarks and overflow from the metric registry.
	if m.reg != nil {
		snap := m.reg.Snapshot()
		m.mu.Lock()
		for name, depth := range snap.Gauges {
			unit, ok := strings.CutPrefix(name, "core_dedicated_depth:")
			if !ok {
				continue
			}
			if depth >= int64(m.cfg.QueueWatermark) {
				r.Findings = append(r.Findings, Finding{
					Unit: unit, Check: "queue-watermark", Level: LevelWarn,
					Detail: fmt.Sprintf("dedicated queue depth %d >= watermark %d", depth, m.cfg.QueueWatermark),
				})
			}
		}
		for name, count := range snap.Counters {
			unit, ok := strings.CutPrefix(name, "core_dedicated_dropped:")
			if !ok {
				continue
			}
			if prev := m.lastDropped[unit]; count > prev {
				r.Findings = append(r.Findings, Finding{
					Unit: unit, Check: "queue-overflow", Level: LevelWarn,
					Detail: fmt.Sprintf("%d deliveries dropped by queue overflow since last check", count-prev),
				})
			}
			m.lastDropped[unit] = count
		}
		m.mu.Unlock()
	}

	m.mu.Lock()
	targets := append([]*watched(nil), m.targets...)
	m.mu.Unlock()
	for _, w := range targets {
		m.checkTarget(w, now, &r)
	}

	sort.Slice(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Unit < b.Unit
	})
	return r
}

func (m *Monitor) checkTarget(w *watched, now time.Time, r *Report) {
	m.mu.Lock()
	churn := w.churn
	w.churn = 0
	m.mu.Unlock()
	if churn > m.cfg.ChurnThreshold {
		r.Findings = append(r.Findings, Finding{
			Node: w.Node, Check: "neighbor-churn", Level: LevelWarn,
			Detail: fmt.Sprintf("%d neighbourhood changes this window (threshold %d)", churn, m.cfg.ChurnThreshold),
		})
	}

	if w.Mgr != nil {
		s := w.Mgr.Stats()
		m.mu.Lock()
		last, hasLast := w.last, w.hasLast
		w.last, w.hasLast = s, true
		m.mu.Unlock()
		if hasLast {
			dEmit := s.Emitted - last.Emitted
			dDeliv := s.Delivered - last.Delivered
			dDrop := s.Dropped - last.Dropped
			// Stall: routable events kept arriving but none were delivered.
			if dDeliv == 0 && dEmit > dDrop {
				r.Findings = append(r.Findings, Finding{
					Node: w.Node, Check: "dispatch-stall", Level: LevelCrit,
					Detail: fmt.Sprintf("%d events emitted this window, none delivered", dEmit),
				})
			}
			if dEmit > 0 {
				if ratio := float64(dDrop) / float64(dEmit); ratio > m.cfg.DropRatio {
					r.Findings = append(r.Findings, Finding{
						Node: w.Node, Check: "drop-rate", Level: LevelWarn,
						Detail: fmt.Sprintf("%.0f%% of %d emitted events dropped this window", 100*ratio, dEmit),
					})
				}
			}
		}
	}

	protos := make([]string, 0, len(w.Tables))
	for name := range w.Tables {
		protos = append(protos, name)
	}
	sort.Strings(protos)
	for _, proto := range protos {
		tbl := w.Tables[proto]
		if tbl == nil {
			continue
		}
		stale := 0
		for _, e := range tbl.Entries() {
			if !e.Valid {
				continue
			}
			if _, ok := e.Best(now); !ok {
				stale++
			}
		}
		if stale > 0 {
			r.Findings = append(r.Findings, Finding{
				Node: w.Node, Unit: proto, Check: "route-staleness", Level: LevelWarn,
				Detail: fmt.Sprintf("%d valid routes whose every path has expired", stale),
			})
		}
	}
}
