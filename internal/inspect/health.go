package inspect

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/metrics"
	"manetkit/internal/route"
)

// Level grades a health finding.
type Level string

// Finding severities. LevelOK is never attached to a finding; it is the
// resting state of a tracked unit between findings.
const (
	LevelOK   Level = "ok"
	LevelWarn Level = "warn"
	LevelCrit Level = "critical"
)

// rank orders severities for worst-of aggregation.
func rank(l Level) int {
	switch l {
	case LevelWarn:
		return 1
	case LevelCrit:
		return 2
	default:
		return 0
	}
}

// Finding is one watchdog observation.
type Finding struct {
	Node   string `json:"node,omitempty"`
	Unit   string `json:"unit,omitempty"`
	Check  string `json:"check"`
	Level  Level  `json:"level"`
	Detail string `json:"detail"`
}

// UnitState is the tracked health state of one location (node, node/unit
// or unit) across checks: its current level, when it last changed (on the
// virtual clock) and how many level transitions it has been through — the
// data behind "degraded for 3.2s, flapped 4x".
type UnitState struct {
	// Key is the location: node, node/unit or bare unit name.
	Key string `json:"key"`
	// Level is the worst finding level of the last check (LevelOK when the
	// location was clean).
	Level Level `json:"level"`
	// Since is the virtual-clock offset of the last level transition.
	Since time.Duration `json:"since_ns"`
	// Flaps counts level transitions since the location was first tracked.
	Flaps int `json:"flaps"`
}

// Transition is one health level change, emitted to the observer (and the
// telemetry health stream) the moment a Check detects it.
type Transition struct {
	// T is the virtual-clock offset of the check that saw the change.
	T time.Duration `json:"t_ns"`
	// Key is the location whose level changed.
	Key string `json:"key"`
	// From and To are the previous and new levels.
	From Level `json:"from"`
	To   Level `json:"to"`
	// Flaps is the location's transition count including this one.
	Flaps int `json:"flaps"`
}

// Report is the health roll-up of one Monitor.Check pass: empty findings
// means every watchdog was satisfied.
type Report struct {
	// T is the virtual-clock offset of the check.
	T        time.Duration `json:"t_ns"`
	Findings []Finding     `json:"findings"`
	// States carries the tracked per-location health states (every
	// location that has ever had a finding), sorted by key.
	States []UnitState `json:"states,omitempty"`
}

// Healthy reports whether the check produced no findings.
func (r Report) Healthy() bool { return len(r.Findings) == 0 }

// String renders the report as one line per finding (or "healthy"),
// followed by the degraded-state roll-up ("warn for 3.2s, flapped 4x").
func (r Report) String() string {
	var b strings.Builder
	if r.Healthy() {
		fmt.Fprintf(&b, "t=%s healthy\n", r.T)
	} else {
		fmt.Fprintf(&b, "t=%s %d findings\n", r.T, len(r.Findings))
		for _, f := range r.Findings {
			loc := f.Node
			if f.Unit != "" {
				loc += "/" + f.Unit
			}
			fmt.Fprintf(&b, "  [%s] %-18s %-22s %s\n", f.Level, f.Check, loc, f.Detail)
		}
	}
	for _, s := range r.States {
		if s.Level == LevelOK && s.Flaps == 0 {
			continue
		}
		if s.Level == LevelOK {
			fmt.Fprintf(&b, "  state %-22s recovered %s ago (flapped %dx)\n", s.Key, r.T-s.Since, s.Flaps)
			continue
		}
		fmt.Fprintf(&b, "  state %-22s %s for %s (flapped %dx)\n", s.Key, s.Level, r.T-s.Since, s.Flaps)
	}
	return b.String()
}

// MonitorConfig tunes the watchdog thresholds.
type MonitorConfig struct {
	// QueueWatermark flags dedicated-queue depths at or above it
	// (default 512 — half the default queue bound).
	QueueWatermark int
	// DropRatio flags a node whose dropped/emitted ratio over the check
	// window exceeds it (default 0.5).
	DropRatio float64
	// ChurnThreshold flags a node observing more neighbourhood changes
	// than it within one check window (default 16).
	ChurnThreshold int
}

func (c *MonitorConfig) fill() {
	if c.QueueWatermark <= 0 {
		c.QueueWatermark = 512
	}
	if c.DropRatio <= 0 {
		c.DropRatio = 0.5
	}
	if c.ChurnThreshold <= 0 {
		c.ChurnThreshold = 16
	}
}

// Target is one node under health watch: its manager and, optionally, the
// protocol route tables to check for staleness.
type Target struct {
	Node string
	Mgr  *core.Manager
	// Tables maps a protocol name to its route table; stale-route checks
	// are skipped when empty.
	Tables map[string]*route.Table
}

type watched struct {
	Target
	last    core.ManagerStats
	hasLast bool
	churn   int
}

// Monitor rolls per-unit watchdogs over the existing observability
// surfaces into a health report: dedicated-queue watermarks and overflow
// (metrics gauges/counters), dispatch-progress stalls and drop ratios
// (manager counters between successive checks), route-table staleness
// (valid entries whose every path has expired) and neighbour churn
// (NHOOD_CHANGE events per check window). It owns no goroutines — call
// Check from wherever paces the deployment (a timer, an HTTP handler, the
// end of a chaos run).
type Monitor struct {
	epoch time.Time
	reg   *metrics.Registry
	cfg   MonitorConfig

	mu          sync.Mutex
	targets     []*watched
	lastDropped map[string]uint64
	states      map[string]*UnitState
	obs         func(Transition)
}

// SetObserver installs fn to receive every health level transition, in
// deterministic (sorted key) order per check. fn runs outside the
// monitor's lock, on the goroutine that called Check. nil detaches.
func (m *Monitor) SetObserver(fn func(Transition)) {
	m.mu.Lock()
	m.obs = fn
	m.mu.Unlock()
}

// NewMonitor creates a monitor reading cluster-wide instruments from reg
// (nil disables the metrics-based checks). Report timestamps are offsets
// from epoch.
func NewMonitor(epoch time.Time, reg *metrics.Registry, cfg MonitorConfig) *Monitor {
	cfg.fill()
	return &Monitor{
		epoch:       epoch,
		reg:         reg,
		cfg:         cfg,
		lastDropped: make(map[string]uint64),
		states:      make(map[string]*UnitState),
	}
}

// Watch adds a node to the monitor and subscribes to its neighbourhood
// change events for churn accounting.
func (m *Monitor) Watch(t Target) {
	if t.Node == "" && t.Mgr != nil {
		t.Node = t.Mgr.Node().String()
	}
	w := &watched{Target: t}
	m.mu.Lock()
	m.targets = append(m.targets, w)
	m.mu.Unlock()
	if t.Mgr != nil {
		t.Mgr.SubscribeContext(event.NhoodChange, func(*event.Event) {
			m.mu.Lock()
			w.churn++
			m.mu.Unlock()
		})
	}
}

// Check runs every watchdog once against the current state, using now (the
// deployment's virtual clock) for route-expiry evaluation, and resets the
// per-window accounting. Findings are sorted for deterministic output.
func (m *Monitor) Check(now time.Time) Report {
	r := Report{T: now.Sub(m.epoch)}

	// Cluster-wide queue watermarks and overflow from the metric registry.
	if m.reg != nil {
		snap := m.reg.Snapshot()
		m.mu.Lock()
		for name, depth := range snap.Gauges {
			unit, ok := strings.CutPrefix(name, "core_dedicated_depth:")
			if !ok {
				continue
			}
			if depth >= int64(m.cfg.QueueWatermark) {
				r.Findings = append(r.Findings, Finding{
					Unit: unit, Check: "queue-watermark", Level: LevelWarn,
					Detail: fmt.Sprintf("dedicated queue depth %d >= watermark %d", depth, m.cfg.QueueWatermark),
				})
			}
		}
		for name, count := range snap.Counters {
			unit, ok := strings.CutPrefix(name, "core_dedicated_dropped:")
			if !ok {
				continue
			}
			if prev := m.lastDropped[unit]; count > prev {
				r.Findings = append(r.Findings, Finding{
					Unit: unit, Check: "queue-overflow", Level: LevelWarn,
					Detail: fmt.Sprintf("%d deliveries dropped by queue overflow since last check", count-prev),
				})
			}
			m.lastDropped[unit] = count
		}
		m.mu.Unlock()
	}

	m.mu.Lock()
	targets := append([]*watched(nil), m.targets...)
	m.mu.Unlock()
	for _, w := range targets {
		m.checkTarget(w, now, &r)
	}

	sort.Slice(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Unit < b.Unit
	})
	r.States, _ = m.advanceStates(&r)
	return r
}

// findingKey is the location a finding is tracked under: node, node/unit
// or bare unit.
func findingKey(f Finding) string {
	loc := f.Node
	if f.Unit != "" {
		if loc != "" {
			loc += "/"
		}
		loc += f.Unit
	}
	return loc
}

// advanceStates folds one check's findings into the per-location state
// machine: a location's level is the worst of its findings this pass
// (LevelOK when clean), every level change bumps its flap counter and
// resets its Since timestamp, and each change is emitted to the observer
// in sorted key order. Locations are tracked from their first finding on,
// so recoveries are visible as explicit ok states.
func (m *Monitor) advanceStates(r *Report) ([]UnitState, []Transition) {
	worst := make(map[string]Level, len(r.Findings))
	for _, f := range r.Findings {
		key := findingKey(f)
		if rank(f.Level) > rank(worst[key]) {
			worst[key] = f.Level
		}
	}
	m.mu.Lock()
	for key := range worst {
		if m.states[key] == nil {
			m.states[key] = &UnitState{Key: key, Level: LevelOK, Since: r.T}
		}
	}
	keys := make([]string, 0, len(m.states))
	for key := range m.states {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	states := make([]UnitState, 0, len(keys))
	var trans []Transition
	for _, key := range keys {
		st := m.states[key]
		level := worst[key]
		if level == "" {
			level = LevelOK
		}
		if level != st.Level {
			st.Flaps++
			trans = append(trans, Transition{T: r.T, Key: key, From: st.Level, To: level, Flaps: st.Flaps})
			st.Level = level
			st.Since = r.T
		}
		states = append(states, *st)
	}
	obs := m.obs
	m.mu.Unlock()
	if obs != nil {
		for _, t := range trans {
			obs(t)
		}
	}
	return states, trans
}

func (m *Monitor) checkTarget(w *watched, now time.Time, r *Report) {
	m.mu.Lock()
	churn := w.churn
	w.churn = 0
	m.mu.Unlock()
	if churn > m.cfg.ChurnThreshold {
		r.Findings = append(r.Findings, Finding{
			Node: w.Node, Check: "neighbor-churn", Level: LevelWarn,
			Detail: fmt.Sprintf("%d neighbourhood changes this window (threshold %d)", churn, m.cfg.ChurnThreshold),
		})
	}

	if w.Mgr != nil {
		s := w.Mgr.Stats()
		m.mu.Lock()
		last, hasLast := w.last, w.hasLast
		w.last, w.hasLast = s, true
		m.mu.Unlock()
		if hasLast {
			dEmit := s.Emitted - last.Emitted
			dDeliv := s.Delivered - last.Delivered
			dDrop := s.Dropped - last.Dropped
			// Stall: routable events kept arriving but none were delivered.
			if dDeliv == 0 && dEmit > dDrop {
				r.Findings = append(r.Findings, Finding{
					Node: w.Node, Check: "dispatch-stall", Level: LevelCrit,
					Detail: fmt.Sprintf("%d events emitted this window, none delivered", dEmit),
				})
			}
			if dEmit > 0 {
				if ratio := float64(dDrop) / float64(dEmit); ratio > m.cfg.DropRatio {
					r.Findings = append(r.Findings, Finding{
						Node: w.Node, Check: "drop-rate", Level: LevelWarn,
						Detail: fmt.Sprintf("%.0f%% of %d emitted events dropped this window", 100*ratio, dEmit),
					})
				}
			}
		}
	}

	protos := make([]string, 0, len(w.Tables))
	for name := range w.Tables {
		protos = append(protos, name)
	}
	sort.Strings(protos)
	for _, proto := range protos {
		tbl := w.Tables[proto]
		if tbl == nil {
			continue
		}
		stale := 0
		for _, e := range tbl.Entries() {
			if !e.Valid {
				continue
			}
			if _, ok := e.Best(now); !ok {
				stale++
			}
		}
		if stale > 0 {
			r.Findings = append(r.Findings, Finding{
				Node: w.Node, Unit: proto, Check: "route-staleness", Level: LevelWarn,
				Detail: fmt.Sprintf("%d valid routes whose every path has expired", stale),
			})
		}
	}
}
