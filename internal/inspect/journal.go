package inspect

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"manetkit/internal/core"
)

// Entry is one journalled reconfiguration: the virtual-clock offset at
// which a node's topology was re-derived, a derived reason, and the
// structural delta against the node's previous snapshot.
type Entry struct {
	// T is the virtual-clock offset from the journal's epoch.
	T time.Duration `json:"t_ns"`
	// Node is the reconfigured node's address.
	Node string `json:"node"`
	// Reason classifies the delta: "deploy:<units>", "undeploy:<units>",
	// "model:<old -> new>", "retuple:<units>", "recompose:<units>" or
	// "rewire".
	Reason string `json:"reason"`
	Delta  Delta  `json:"delta"`
}

// Journal records every topology re-derivation of the managers it watches
// as a timestamped snapshot diff — the replayable audit trail of serial
// protocol switches and hybrid reconfigurations. All timestamps come from
// each manager's own (virtual) clock, so journals are deterministic per
// (composition, seed).
//
// Guarantees: entries appear in hook-invocation order; every entry's delta
// is computed against the same node's previous snapshot (the baseline is
// taken when Watch is called); re-derivations that produce no structural
// change are elided. A Journal is safe for concurrent use by multiple
// managers.
type Journal struct {
	epoch time.Time

	mu      sync.Mutex
	prev    map[string]NodeSnapshot
	entries []Entry
	obs     func(Entry)
}

// SetObserver installs fn to be called for every appended entry, in
// append order, under the journal's lock (fn must not call back into the
// journal). The telemetry bus uses it to stream reconfigurations live.
// nil detaches.
func (j *Journal) SetObserver(fn func(Entry)) {
	j.mu.Lock()
	j.obs = fn
	j.mu.Unlock()
}

// NewJournal creates a journal whose entry timestamps are offsets from
// epoch (use the deployment's clock epoch, e.g. testbed.Epoch).
func NewJournal(epoch time.Time) *Journal {
	return &Journal{epoch: epoch, prev: make(map[string]NodeSnapshot)}
}

// Watch hooks the manager's rewire notification: the current architecture
// becomes the node's baseline and every subsequent re-derivation appends a
// delta entry. Watching a manager replaces any previously installed rewire
// hook.
func (j *Journal) Watch(m *core.Manager) {
	base := CaptureNode(m)
	j.mu.Lock()
	j.prev[base.Node] = base
	j.mu.Unlock()
	m.SetRewireHook(func() { j.record(m) })
}

func (j *Journal) record(m *core.Manager) {
	now := m.Clock().Now()
	snap := CaptureNode(m)
	j.mu.Lock()
	defer j.mu.Unlock()
	d := DiffNode(j.prev[snap.Node], snap)
	d.Node = snap.Node
	j.prev[snap.Node] = snap
	if d.Empty() {
		return
	}
	e := Entry{
		T:      now.Sub(j.epoch),
		Node:   snap.Node,
		Reason: reasonFor(d),
		Delta:  d,
	}
	j.entries = append(j.entries, e)
	if j.obs != nil {
		j.obs(e)
	}
}

// reasonFor classifies a delta by its most significant change.
func reasonFor(d Delta) string {
	switch {
	case len(d.AddedUnits) > 0:
		return "deploy:" + strings.Join(d.AddedUnits, ",")
	case len(d.RemovedUnits) > 0:
		return "undeploy:" + strings.Join(d.RemovedUnits, ",")
	case d.ModelChange != "":
		return "model:" + d.ModelChange
	case len(d.TupleChanged) > 0:
		return "retuple:" + strings.Join(d.TupleChanged, ",")
	case len(d.ComponentsChanged) > 0:
		return "recompose:" + strings.Join(d.ComponentsChanged, ",")
	default:
		return "rewire"
	}
}

// Len returns the number of journalled entries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Entries copies out the journal in append order.
func (j *Journal) Entries() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Entry(nil), j.entries...)
}

// JSON serializes the journal deterministically as one entry per line.
func (j *Journal) JSON() ([]byte, error) {
	var buf bytes.Buffer
	for _, e := range j.Entries() {
		line, err := json.Marshal(e)
		if err != nil {
			return nil, err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// String renders the journal as a human-readable reconfiguration log.
func (j *Journal) String() string {
	var b strings.Builder
	for _, e := range j.Entries() {
		fmt.Fprintf(&b, "%12s  %-12s %-24s %s\n", e.T, e.Node, e.Reason, e.Delta.String())
	}
	return b.String()
}
