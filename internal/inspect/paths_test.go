package inspect_test

import (
	"strings"
	"testing"
	"time"

	"manetkit/internal/harness"
	"manetkit/internal/inspect"
	"manetkit/internal/metrics"
	"manetkit/internal/testbed"
	"manetkit/internal/trace"
)

// hop is the pinned shape of one reconstructed link traversal.
type hop struct {
	from, to string
	lat      time.Duration
}

// TestGoldenAODVPathReconstruction pins the causal packet paths of one
// seeded AODV route discovery on a 3-node line: the RREQ flood tree, the
// unicast RREP back along the reverse route, and the data packet over the
// established route. The virtual clock and seeded medium make every hop
// and latency a pure function of (composition, seed), so this is a golden
// test — if it drifts, either the discovery logic or the correlation-ID
// propagation changed.
func TestGoldenAODVPathReconstruction(t *testing.T) {
	tr := trace.New(testbed.Epoch, 0)
	c, err := testbed.New(3, testbed.Options{Seed: 1, Tracer: tr, Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatalf("testbed.New: %v", err)
	}
	defer c.Close()
	if err := c.Line(); err != nil {
		t.Fatalf("Line: %v", err)
	}
	for _, node := range c.Nodes {
		if _, err := harness.DeployAODV(c, node); err != nil {
			t.Fatalf("DeployAODV: %v", err)
		}
	}
	c.Run(13 * time.Second)
	tr.Reset() // isolate the discovery from the convergence traffic
	if err := c.Nodes[0].Sys.Filter().SendData(c.Nodes[2].Addr, []byte("golden")); err != nil {
		t.Fatalf("SendData: %v", err)
	}
	c.Run(5 * time.Second)

	byCorr := make(map[string]inspect.Path)
	for _, p := range inspect.Correlate(tr.Spans()) {
		byCorr[p.Corr] = p
	}

	const ms = time.Millisecond
	golden := []struct {
		corr   string
		origin string
		start  time.Duration
		hops   []hop
	}{
		// The RREQ floods: node 1 broadcasts, node 2 rebroadcasts (heard
		// redundantly by 1, newly by 3). Each link adds the medium's 1.5ms.
		{"RREQ:10.0.0.1:1", "10.0.0.1", 13 * time.Second, []hop{
			{"10.0.0.1", "10.0.0.2", 1500 * time.Microsecond},
			{"10.0.0.2", "10.0.0.1", 1500 * time.Microsecond},
			{"10.0.0.2", "10.0.0.3", 1500 * time.Microsecond},
		}},
		// The RREP unicasts back along the reverse route.
		{"RREP:10.0.0.3:1", "10.0.0.3", 13*time.Second + 3*ms, []hop{
			{"10.0.0.3", "10.0.0.2", 1500 * time.Microsecond},
			{"10.0.0.2", "10.0.0.1", 1500 * time.Microsecond},
		}},
		// The held data packet forwards over the established route.
		{"DATA:10.0.0.1:1", "10.0.0.1", 13 * time.Second, []hop{
			{"10.0.0.1", "10.0.0.2", 1500 * time.Microsecond},
			{"10.0.0.2", "10.0.0.3", 1500 * time.Microsecond},
		}},
	}
	for _, g := range golden {
		p, ok := byCorr[g.corr]
		if !ok {
			t.Errorf("no reconstructed path for %s; have %v", g.corr, corrs(byCorr))
			continue
		}
		if p.Origin != g.origin {
			t.Errorf("%s origin = %s, want %s", g.corr, p.Origin, g.origin)
		}
		if p.Start != g.start {
			t.Errorf("%s start = %s, want %s", g.corr, p.Start, g.start)
		}
		if p.Drops != 0 {
			t.Errorf("%s records %d frame drops, want 0", g.corr, p.Drops)
		}
		if len(p.Hops) != len(g.hops) {
			t.Errorf("%s has %d hops, want %d: %+v", g.corr, len(p.Hops), len(g.hops), p.Hops)
			continue
		}
		for i, h := range p.Hops {
			want := g.hops[i]
			if h.From != want.from || h.To != want.to {
				t.Errorf("%s hop %d = %s -> %s, want %s -> %s", g.corr, i, h.From, h.To, want.from, want.to)
			}
			if h.Latency != want.lat {
				t.Errorf("%s hop %d latency = %s, want %s", g.corr, i, h.Latency, want.lat)
			}
			if h.Rx-h.Tx != h.Latency {
				t.Errorf("%s hop %d latency %s inconsistent with tx=%s rx=%s", g.corr, i, h.Latency, h.Tx, h.Rx)
			}
		}
	}

	// The RREQ's propagation tree renders as a flood rooted at the
	// originator, with node 2's rebroadcast fanning out underneath.
	tree := byCorr["RREQ:10.0.0.1:1"].Tree()
	for _, want := range []string{
		"RREQ:10.0.0.1:1",
		"10.0.0.1 -> 10.0.0.2  (+1.5ms)",
		"  10.0.0.2 -> 10.0.0.1  (+1.5ms)",
		"  10.0.0.2 -> 10.0.0.3  (+1.5ms)",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("RREQ tree missing %q:\n%s", want, tree)
		}
	}

	// Rendering caps honour the limit and report the elision.
	all := inspect.Correlate(tr.Spans())
	if len(all) < 3 {
		t.Fatalf("expected at least 3 correlated paths, got %d", len(all))
	}
	out := inspect.RenderPaths(all, 2)
	if !strings.Contains(out, "more paths elided") {
		t.Errorf("RenderPaths(limit=2) did not report elision:\n%s", out)
	}
}

func corrs(m map[string]inspect.Path) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestCorrelateDeterministic: correlation over two identical runs yields
// identical renderings (path order, hops, latencies).
func TestCorrelateDeterministic(t *testing.T) {
	render := func() string {
		tr := trace.New(testbed.Epoch, 0)
		c, err := testbed.New(3, testbed.Options{Seed: 1, Tracer: tr})
		if err != nil {
			t.Fatalf("testbed.New: %v", err)
		}
		defer c.Close()
		if err := c.Line(); err != nil {
			t.Fatalf("Line: %v", err)
		}
		for _, node := range c.Nodes {
			if _, err := harness.DeployAODV(c, node); err != nil {
				t.Fatalf("DeployAODV: %v", err)
			}
		}
		c.Run(13 * time.Second)
		if err := c.Nodes[0].Sys.Filter().SendData(c.Nodes[2].Addr, []byte("x")); err != nil {
			t.Fatalf("SendData: %v", err)
		}
		c.Run(5 * time.Second)
		return inspect.RenderPaths(inspect.Correlate(tr.Spans()), 0)
	}
	if a, b := render(), render(); a != b {
		t.Errorf("path reconstructions of identical runs differ:\n%s\nvs\n%s", a, b)
	}
}
