// Tests for the introspection layer: snapshot determinism, the JSON/DOT
// round trip, and the rewire journal across a serial protocol switch. They
// live in an external test package because the experiment harness (which
// the scenarios reuse) itself imports inspect.
package inspect_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/dymo"
	"manetkit/internal/harness"
	"manetkit/internal/inspect"
	"manetkit/internal/metrics"
	"manetkit/internal/mpr"
	"manetkit/internal/neighbor"
	"manetkit/internal/olsr"
	"manetkit/internal/testbed"
)

// switchRun is one deterministic serial-switch scenario: a 3-node OLSR
// line that hot-swaps every node to DYMO, observed end to end.
type switchRun struct {
	journal *inspect.Journal
	before  inspect.Snapshot // OLSR deployment, converged
	after   inspect.Snapshot // DYMO deployment, converged
}

// serialSwitch drives the paper's serial protocol switch (OLSR -> DYMO) on
// a 3-node line with a journal watching every manager.
func serialSwitch(t *testing.T) switchRun {
	t.Helper()
	c, err := testbed.New(3, testbed.Options{Seed: 1, Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatalf("testbed.New: %v", err)
	}
	t.Cleanup(c.Close)
	if err := c.Line(); err != nil {
		t.Fatalf("Line: %v", err)
	}
	journal := inspect.NewJournal(testbed.Epoch)
	mgrs := make([]*core.Manager, len(c.Nodes))
	for i, node := range c.Nodes {
		mgrs[i] = node.Mgr
		journal.Watch(node.Mgr)
	}
	for _, node := range c.Nodes {
		if _, err := harness.DeployOLSR(c, node); err != nil {
			t.Fatalf("DeployOLSR: %v", err)
		}
	}
	c.Run(10 * time.Second)
	before := inspect.Capture(mgrs...)

	for _, node := range c.Nodes {
		for _, unit := range []string{olsr.UnitName, mpr.UnitName} {
			if err := node.Mgr.Undeploy(unit); err != nil {
				t.Fatalf("Undeploy %s: %v", unit, err)
			}
		}
		if _, err := harness.DeployDYMO(c, node); err != nil {
			t.Fatalf("DeployDYMO: %v", err)
		}
	}
	c.Run(10 * time.Second)
	after := inspect.Capture(mgrs...)
	return switchRun{journal: journal, before: before, after: after}
}

// TestSnapshotDeterminism: two identical (composition, seed) runs must
// yield byte-identical snapshot JSON and byte-identical rewire journals.
func TestSnapshotDeterminism(t *testing.T) {
	a := serialSwitch(t)
	b := serialSwitch(t)
	for _, pair := range []struct {
		name string
		x, y inspect.Snapshot
	}{{"before", a.before, b.before}, {"after", a.after, b.after}} {
		xj, err := pair.x.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		yj, err := pair.y.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		if !bytes.Equal(xj, yj) {
			t.Errorf("%s snapshots of identical runs differ:\n%s\nvs\n%s", pair.name, xj, yj)
		}
	}
	aj, err := a.journal.JSON()
	if err != nil {
		t.Fatalf("journal JSON: %v", err)
	}
	bj, err := b.journal.JSON()
	if err != nil {
		t.Fatalf("journal JSON: %v", err)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("journals of identical runs differ:\n%s\nvs\n%s", aj, bj)
	}
	if a.journal.Len() == 0 {
		t.Error("serial switch produced an empty journal")
	}
}

// TestSnapshotRoundTrip: the DOT rendering must be reproducible from the
// JSON form alone (mkemu -graph writes DOT derived from the snapshot it
// would also serve as JSON).
func TestSnapshotRoundTrip(t *testing.T) {
	run := serialSwitch(t)
	for _, s := range []inspect.Snapshot{run.before, run.after} {
		j, err := s.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		parsed, err := inspect.ParseSnapshot(j)
		if err != nil {
			t.Fatalf("ParseSnapshot: %v", err)
		}
		j2, err := parsed.JSON()
		if err != nil {
			t.Fatalf("re-JSON: %v", err)
		}
		if !bytes.Equal(j, j2) {
			t.Errorf("JSON round trip not stable:\n%s\nvs\n%s", j, j2)
		}
		if dot, dot2 := s.DOT(), parsed.DOT(); dot != dot2 {
			t.Errorf("DOT differs after JSON round trip:\n%s\nvs\n%s", dot, dot2)
		}
	}
	dot := run.after.DOT()
	for _, want := range []string{
		`"10.0.0.1/` + dymo.UnitName + `"`,
		`"10.0.0.3/` + neighbor.UnitName + `"`,
		"[single-threaded]",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

// TestSerialSwitchDiff: the structural diff across the OLSR -> DYMO switch
// must name exactly the swapped units on every node and record the
// re-derived event topology.
func TestSerialSwitchDiff(t *testing.T) {
	run := serialSwitch(t)
	deltas := inspect.Diff(run.before, run.after)
	if len(deltas) != 3 {
		t.Fatalf("Diff produced %d deltas, want 3 (one per node): %+v", len(deltas), deltas)
	}
	for _, d := range deltas {
		if got, want := strings.Join(d.AddedUnits, ","), neighbor.UnitName+","+dymo.UnitName; got != want {
			t.Errorf("%s added units %q, want %q", d.Node, got, want)
		}
		if got, want := strings.Join(d.RemovedUnits, ","), mpr.UnitName+","+olsr.UnitName; got != want {
			t.Errorf("%s removed units %q, want %q", d.Node, got, want)
		}
		if len(d.AddedBindings) == 0 || len(d.RemovedBindings) == 0 {
			t.Errorf("%s recorded no binding changes (added=%d removed=%d); the event topology must have been re-derived",
				d.Node, len(d.AddedBindings), len(d.RemovedBindings))
		}
	}
	// A snapshot diffed against itself is all quiet.
	if extra := inspect.Diff(run.after, run.after); len(extra) != 0 {
		t.Errorf("self-diff not empty: %+v", extra)
	}
}

// TestJournalRecordsSwitch: the journal must contain, per node and in
// order, the undeploys of the OLSR composition followed by the deploys of
// the DYMO composition.
func TestJournalRecordsSwitch(t *testing.T) {
	run := serialSwitch(t)
	for _, node := range []string{"10.0.0.1", "10.0.0.2", "10.0.0.3"} {
		wantOrder := []string{
			"deploy:" + mpr.UnitName,
			"deploy:" + olsr.UnitName,
			"undeploy:" + olsr.UnitName,
			"undeploy:" + mpr.UnitName,
			"deploy:" + neighbor.UnitName,
			"deploy:" + dymo.UnitName,
		}
		i := 0
		for _, e := range run.journal.Entries() {
			if e.Node == node && i < len(wantOrder) && e.Reason == wantOrder[i] {
				i++
			}
		}
		if i != len(wantOrder) {
			t.Errorf("journal for %s missing %q (matched %d of %d):\n%s",
				node, wantOrder[i], i, len(wantOrder), run.journal.String())
		}
	}
	// Every journalled delta must be non-empty and timestamped on or after
	// the epoch.
	for _, e := range run.journal.Entries() {
		if e.Delta.Empty() {
			t.Errorf("journal entry with empty delta: %+v", e)
		}
		if e.T < 0 {
			t.Errorf("journal entry before epoch: %+v", e)
		}
	}
}
