package inspect

import (
	"fmt"
	"sort"
	"strings"
)

// Delta names the structural differences of one node between two
// snapshots. An all-empty Delta (only Node set) means the node's
// architecture is unchanged.
type Delta struct {
	Node string `json:"node"`
	// AddedUnits / RemovedUnits name units present in only one snapshot.
	AddedUnits   []string `json:"added_units,omitempty"`
	RemovedUnits []string `json:"removed_units,omitempty"`
	// ModelChange is "old -> new" when the concurrency model switched.
	ModelChange string `json:"model_change,omitempty"`
	// TupleChanged names units (present in both) whose event tuple changed.
	TupleChanged []string `json:"tuple_changed,omitempty"`
	// DedicatedChanged names units whose thread placement flipped.
	DedicatedChanged []string `json:"dedicated_changed,omitempty"`
	// ComponentsChanged names units whose inner CF composition changed
	// (handler swaps, source plug-ins — the fine-grained reconfigurations).
	ComponentsChanged []string `json:"components_changed,omitempty"`
	// AddedBindings / RemovedBindings are the event-topology edge changes.
	AddedBindings   []BindingSnapshot `json:"added_bindings,omitempty"`
	RemovedBindings []BindingSnapshot `json:"removed_bindings,omitempty"`
}

// Empty reports whether the delta records no structural change.
func (d Delta) Empty() bool {
	return len(d.AddedUnits) == 0 && len(d.RemovedUnits) == 0 &&
		d.ModelChange == "" && len(d.TupleChanged) == 0 &&
		len(d.DedicatedChanged) == 0 && len(d.ComponentsChanged) == 0 &&
		len(d.AddedBindings) == 0 && len(d.RemovedBindings) == 0
}

// String renders the delta as one human-readable line.
func (d Delta) String() string {
	if d.Empty() {
		return d.Node + ": unchanged"
	}
	var parts []string
	if len(d.AddedUnits) > 0 {
		parts = append(parts, "+units["+strings.Join(d.AddedUnits, ",")+"]")
	}
	if len(d.RemovedUnits) > 0 {
		parts = append(parts, "-units["+strings.Join(d.RemovedUnits, ",")+"]")
	}
	if d.ModelChange != "" {
		parts = append(parts, "model("+d.ModelChange+")")
	}
	if len(d.TupleChanged) > 0 {
		parts = append(parts, "retuple["+strings.Join(d.TupleChanged, ",")+"]")
	}
	if len(d.DedicatedChanged) > 0 {
		parts = append(parts, "threading["+strings.Join(d.DedicatedChanged, ",")+"]")
	}
	if len(d.ComponentsChanged) > 0 {
		parts = append(parts, "recomposed["+strings.Join(d.ComponentsChanged, ",")+"]")
	}
	if n := len(d.AddedBindings); n > 0 {
		parts = append(parts, fmt.Sprintf("+%d bindings", n))
	}
	if n := len(d.RemovedBindings); n > 0 {
		parts = append(parts, fmt.Sprintf("-%d bindings", n))
	}
	return d.Node + ": " + strings.Join(parts, " ")
}

// DiffNode computes the structural delta from a to b for one node.
func DiffNode(a, b NodeSnapshot) Delta {
	d := Delta{Node: b.Node}
	if d.Node == "" {
		d.Node = a.Node
	}
	if a.Model != b.Model && a.Model != "" && b.Model != "" {
		d.ModelChange = a.Model + " -> " + b.Model
	}
	au := make(map[string]UnitSnapshot, len(a.Units))
	for _, u := range a.Units {
		au[u.Name] = u
	}
	bu := make(map[string]UnitSnapshot, len(b.Units))
	for _, u := range b.Units {
		bu[u.Name] = u
	}
	for _, u := range b.Units {
		old, ok := au[u.Name]
		if !ok {
			d.AddedUnits = append(d.AddedUnits, u.Name)
			continue
		}
		if !equalStrings(old.Required, u.Required) || !equalStrings(old.Provided, u.Provided) {
			d.TupleChanged = append(d.TupleChanged, u.Name)
		}
		if old.Dedicated != u.Dedicated {
			d.DedicatedChanged = append(d.DedicatedChanged, u.Name)
		}
		if !equalComponentSets(old.Components, u.Components) {
			d.ComponentsChanged = append(d.ComponentsChanged, u.Name)
		}
	}
	for _, u := range a.Units {
		if _, ok := bu[u.Name]; !ok {
			d.RemovedUnits = append(d.RemovedUnits, u.Name)
		}
	}
	ab := make(map[BindingSnapshot]bool, len(a.Bindings))
	for _, x := range a.Bindings {
		ab[x] = true
	}
	bb := make(map[BindingSnapshot]bool, len(b.Bindings))
	for _, x := range b.Bindings {
		bb[x] = true
	}
	for _, x := range b.Bindings {
		if !ab[x] {
			d.AddedBindings = append(d.AddedBindings, x)
		}
	}
	for _, x := range a.Bindings {
		if !bb[x] {
			d.RemovedBindings = append(d.RemovedBindings, x)
		}
	}
	sortBindings(d.AddedBindings)
	sortBindings(d.RemovedBindings)
	return d
}

// Diff computes per-node deltas from snapshot a to snapshot b, in node
// order. Nodes present in only one snapshot appear with all their units
// added or removed. Unchanged nodes are elided.
func Diff(a, b Snapshot) []Delta {
	an := make(map[string]NodeSnapshot, len(a.Nodes))
	for _, n := range a.Nodes {
		an[n.Node] = n
	}
	bn := make(map[string]NodeSnapshot, len(b.Nodes))
	for _, n := range b.Nodes {
		bn[n.Node] = n
	}
	names := make([]string, 0, len(an)+len(bn))
	for name := range an {
		names = append(names, name)
	}
	for name := range bn {
		if _, ok := an[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []Delta
	for _, name := range names {
		d := DiffNode(an[name], bn[name])
		d.Node = name
		if !d.Empty() {
			out = append(out, d)
		}
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// equalComponentSets compares inner compositions as sets: registration
// order is incidental for "did a handler get swapped" purposes.
func equalComponentSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	return equalStrings(as, bs)
}
