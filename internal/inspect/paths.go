package inspect

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"manetkit/internal/trace"
)

// Hop is one link traversal of a correlated message: the frame-tx on the
// sending node matched to the frame-rx on the receiving node, with the
// virtual-clock latency between them.
type Hop struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Tx and Rx are virtual-clock offsets of the matched frame-tx and
	// frame-rx spans.
	Tx time.Duration `json:"tx_ns"`
	Rx time.Duration `json:"rx_ns"`
	// Latency is Rx - Tx: the per-hop link delay the medium applied.
	Latency time.Duration `json:"latency_ns"`
}

// Path is the end-to-end reconstruction of one correlated message: every
// hop it took across the network, stitched from the trace spans of all
// nodes. A flooded RREQ yields one Path whose hops form the flood tree; the
// unicast RREP yields another whose hops form the reply chain.
type Path struct {
	Corr string `json:"corr"`
	// Origin is the node that first touched the message (usually its
	// originator's emit span).
	Origin string `json:"origin"`
	// Start and End bound the message's lifetime in the trace.
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	// Hops are the completed link traversals in arrival order.
	Hops []Hop `json:"hops,omitempty"`
	// Drops counts frame-drop spans (loss, no link) for this message.
	Drops int `json:"drops,omitempty"`
	// Spans is the total number of trace spans carrying this correlation
	// ID (emit, dispatch, handle and frame spans across all nodes).
	Spans int `json:"spans"`
}

// Correlate stitches the spans of a whole cluster (one shared tracer) into
// per-message causal paths. Spans with an empty correlation ID are ignored.
// Each frame-rx is matched to the latest preceding frame-tx with the same
// correlation ID on the sending node, which handles both unicast chains and
// broadcast fan-out (one tx, many rx). The result is ordered by first
// appearance in the trace, so it is deterministic for a deterministic
// trace.
func Correlate(spans []trace.Span) []Path {
	groups := make(map[string][]trace.Span)
	var order []string
	for _, s := range spans {
		if s.Corr == "" {
			continue
		}
		if _, ok := groups[s.Corr]; !ok {
			order = append(order, s.Corr)
		}
		groups[s.Corr] = append(groups[s.Corr], s)
	}
	out := make([]Path, 0, len(order))
	for _, corr := range order {
		out = append(out, correlateOne(corr, groups[corr]))
	}
	return out
}

func correlateOne(corr string, spans []trace.Span) Path {
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].T != spans[j].T {
			return spans[i].T < spans[j].T
		}
		return spans[i].Seq < spans[j].Seq
	})
	p := Path{
		Corr:   corr,
		Origin: spans[0].Node,
		Start:  spans[0].T,
		End:    spans[len(spans)-1].T,
		Spans:  len(spans),
	}
	txByNode := make(map[string][]trace.Span)
	for _, s := range spans {
		switch s.Kind {
		case trace.KindFrameTx:
			txByNode[s.Node] = append(txByNode[s.Node], s)
		case trace.KindFrameDrop:
			p.Drops++
		case trace.KindFrameRx:
			txs := txByNode[s.From]
			// Latest tx on the sending node at or before the rx.
			best := -1
			for i, tx := range txs {
				if tx.T <= s.T {
					best = i
				}
			}
			if best < 0 {
				continue // rx without a visible tx (trace truncation)
			}
			tx := txs[best]
			p.Hops = append(p.Hops, Hop{
				From: s.From, To: s.Node,
				Tx: tx.T, Rx: s.T, Latency: s.T - tx.T,
			})
		}
	}
	return p
}

// Tree renders the path's hops as the message's propagation tree rooted at
// its origin: a flooded RREQ shows its actual flood tree, a unicast RREP a
// single chain. Hops into already-visited nodes are printed (they are real
// redundant arrivals) but not expanded.
func (p Path) Tree() string {
	children := make(map[string][]Hop)
	for _, h := range p.Hops {
		children[h.From] = append(children[h.From], h)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  spans=%d drops=%d  t=%s..%s\n", p.Corr, p.Spans, p.Drops, p.Start, p.End)
	visited := map[string]bool{p.Origin: true}
	var walk func(node string, depth int)
	walk = func(node string, depth int) {
		for _, h := range children[node] {
			fmt.Fprintf(&b, "%s%s -> %s  (+%s)\n",
				strings.Repeat("  ", depth+1), h.From, h.To, h.Latency)
			if !visited[h.To] {
				visited[h.To] = true
				walk(h.To, depth+1)
			}
		}
	}
	walk(p.Origin, 0)
	return b.String()
}

// RenderPaths renders up to limit reconstructed paths as propagation trees
// (limit <= 0 renders all), noting how many were elided.
func RenderPaths(paths []Path, limit int) string {
	var b strings.Builder
	n := len(paths)
	if limit > 0 && limit < n {
		n = limit
	}
	for i := 0; i < n; i++ {
		b.WriteString(paths[i].Tree())
	}
	if n < len(paths) {
		fmt.Fprintf(&b, "... %d more paths elided\n", len(paths)-n)
	}
	return b.String()
}
