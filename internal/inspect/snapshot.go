// Package inspect is MANETKit's runtime-introspection layer: it turns the
// reflective architecture meta-model (§4.2, the kernel CF metadata the
// Framework Manager keeps in sync with its derived event topology) into
// artifacts an operator can diff, render and correlate without reading
// source code.
//
// Four facilities, all consuming existing reflective surfaces:
//
//   - meta-model snapshots (this file, dot.go): the live deployment —
//     nodes × CFs × units × event-tuple bindings × concurrency model —
//     serialized to deterministic JSON and Graphviz DOT;
//   - structural diffs (diff.go): Diff(a, b) names inserted/removed units
//     and changed bindings between two snapshots;
//   - the rewire journal (journal.go): every topology re-derivation
//     appends a virtual-clock-timestamped snapshot diff, so serial
//     protocol switches replay as a sequence of graph deltas;
//   - causal packet paths (paths.go) and per-unit health (health.go) over
//     the trace and metrics layers.
//
// Everything is deterministic under the virtual clock: the same
// (composition, seed) yields byte-identical snapshot JSON, journals and
// path reconstructions — the property the inspect tests pin.
package inspect

import (
	"bytes"
	"encoding/json"
	"sort"

	"manetkit/internal/core"
)

// UnitSnapshot describes one deployed CFS unit: its event tuple, its
// concurrency placement and (for ManetProtocol CFs) its inner composition.
type UnitSnapshot struct {
	Name string `json:"name"`
	// Required lists the unit's required event types in declaration order;
	// exclusive-receive requirements carry a "!" suffix.
	Required []string `json:"required,omitempty"`
	// Provided lists the unit's provided event types in declaration order.
	Provided []string `json:"provided,omitempty"`
	// Dedicated marks units running the thread-per-ManetProtocol model.
	Dedicated bool `json:"dedicated,omitempty"`
	// Started reports lifecycle state for ManetProtocol CFs.
	Started bool `json:"started,omitempty"`
	// Components lists the unit's inner CF composition (handlers, sources,
	// C/F/S elements) in registration order; empty for non-CF units or
	// sealed deployments.
	Components []string `json:"components,omitempty"`
}

// BindingSnapshot is one receptacle-to-interface binding from the MANETKit
// CF's architecture meta-model — the reflective mirror of the derived
// event-delivery topology.
type BindingSnapshot struct {
	From       string `json:"from"`
	Receptacle string `json:"receptacle"`
	To         string `json:"to"`
	Interface  string `json:"interface"`
}

// NodeSnapshot is one node's deployment: its concurrency model, units in
// deployment order and the derived bindings (sorted).
type NodeSnapshot struct {
	Node     string            `json:"node"`
	Model    string            `json:"model"`
	Units    []UnitSnapshot    `json:"units"`
	Bindings []BindingSnapshot `json:"bindings,omitempty"`
}

// Snapshot is a whole deployment: every node's meta-model, sorted by node
// address string so the serialization is order-independent.
type Snapshot struct {
	Nodes []NodeSnapshot `json:"nodes"`
}

// CaptureNode reads one Manager's reflective surfaces into a NodeSnapshot.
// It takes the manager's internal locks through the public accessors, so it
// must not be called while holding them (the rewire hook runs outside the
// lock for exactly this reason).
func CaptureNode(m *core.Manager) NodeSnapshot {
	ns := NodeSnapshot{
		Node:  m.Node().String(),
		Model: m.Model().String(),
	}
	for _, name := range m.Units() {
		u, ok := m.Unit(name)
		if !ok {
			continue // undeployed between Units() and Unit()
		}
		us := UnitSnapshot{Name: name, Dedicated: m.DedicatedThread(name)}
		t := u.Tuple()
		for _, r := range t.Required {
			s := string(r.Type)
			if r.Exclusive {
				s += "!"
			}
			us.Required = append(us.Required, s)
		}
		for _, p := range t.Provided {
			us.Provided = append(us.Provided, string(p))
		}
		if p, ok := u.(*core.Protocol); ok {
			us.Started = p.Started()
			us.Components = append(us.Components, p.CF().Arch().Components...)
		}
		ns.Units = append(ns.Units, us)
	}
	for _, b := range m.CF().Arch().Bindings {
		ns.Bindings = append(ns.Bindings, BindingSnapshot{
			From: b.From, Receptacle: b.Receptacle, To: b.To, Interface: b.Interface,
		})
	}
	sortBindings(ns.Bindings)
	return ns
}

// Capture snapshots a whole deployment from its managers.
func Capture(mgrs ...*core.Manager) Snapshot {
	var s Snapshot
	for _, m := range mgrs {
		s.Nodes = append(s.Nodes, CaptureNode(m))
	}
	sort.Slice(s.Nodes, func(i, j int) bool { return s.Nodes[i].Node < s.Nodes[j].Node })
	return s
}

func sortBindings(bs []BindingSnapshot) {
	sort.Slice(bs, func(i, j int) bool {
		a, b := bs[i], bs[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Receptacle != b.Receptacle {
			return a.Receptacle < b.Receptacle
		}
		return a.Interface < b.Interface
	})
}

// JSON serializes the snapshot deterministically: fixed field order, sorted
// nodes and bindings, two-space indent, trailing newline. Two captures of
// identical deployments are byte-identical.
func (s Snapshot) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ParseSnapshot inverts JSON, so a snapshot round-trips losslessly through
// its serialized form (the property the DOT round-trip test pins).
func ParseSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, err
	}
	return s, nil
}
