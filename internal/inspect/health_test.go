package inspect_test

import (
	"testing"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/harness"
	"manetkit/internal/inspect"
	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/route"
	"manetkit/internal/testbed"
	"manetkit/internal/vclock"
)

func findingChecks(r inspect.Report) map[string]int {
	out := map[string]int{}
	for _, f := range r.Findings {
		out[f.Check]++
	}
	return out
}

// TestMonitorHealthyCluster: a converged, undisturbed deployment reports
// no findings.
func TestMonitorHealthyCluster(t *testing.T) {
	reg := metrics.NewRegistry()
	c, err := testbed.New(3, testbed.Options{Seed: 1, Metrics: reg})
	if err != nil {
		t.Fatalf("testbed.New: %v", err)
	}
	defer c.Close()
	if err := c.Line(); err != nil {
		t.Fatalf("Line: %v", err)
	}
	mon := inspect.NewMonitor(testbed.Epoch, reg, inspect.MonitorConfig{})
	for _, node := range c.Nodes {
		d, err := harness.DeployAODV(c, node)
		if err != nil {
			t.Fatalf("DeployAODV: %v", err)
		}
		mon.Watch(inspect.Target{
			Mgr:    node.Mgr,
			Tables: map[string]*route.Table{"aodv": d.AODV.Routes()},
		})
	}
	c.Run(13 * time.Second)
	r := mon.Check(c.Clock.Now())
	if !r.Healthy() {
		t.Errorf("converged cluster not healthy:\n%s", r)
	}
	if r.T != 13*time.Second {
		t.Errorf("report timestamp = %s, want 13s", r.T)
	}
	// Steady state stays healthy across a second window too.
	c.Run(5 * time.Second)
	if r := mon.Check(c.Clock.Now()); !r.Healthy() {
		t.Errorf("steady-state cluster not healthy:\n%s", r)
	}
}

// TestMonitorRouteStaleness: a valid RIB entry whose every path has
// expired is flagged.
func TestMonitorRouteStaleness(t *testing.T) {
	clk := vclock.NewVirtual(testbed.Epoch)
	tbl := route.NewTable(clk)
	tbl.AddPath(mnet.HostPrefix(mnet.MustParseAddr("10.0.0.9")), "aodv", 1, route.Path{
		NextHop: mnet.MustParseAddr("10.0.0.2"),
		Metric:  1,
		Expires: testbed.Epoch.Add(1 * time.Second),
	})
	mon := inspect.NewMonitor(testbed.Epoch, nil, inspect.MonitorConfig{})
	mon.Watch(inspect.Target{Node: "n1", Tables: map[string]*route.Table{"aodv": tbl}})

	if r := mon.Check(testbed.Epoch); !r.Healthy() {
		t.Errorf("unexpired route flagged:\n%s", r)
	}
	r := mon.Check(testbed.Epoch.Add(10 * time.Second))
	if got := findingChecks(r); got["route-staleness"] != 1 {
		t.Errorf("want one route-staleness finding, got:\n%s", r)
	}
	if len(r.Findings) > 0 {
		f := r.Findings[0]
		if f.Node != "n1" || f.Unit != "aodv" || f.Level != inspect.LevelWarn {
			t.Errorf("finding attribution wrong: %+v", f)
		}
	}
}

// TestMonitorDropRate: a manager whose emitted events find no requirer
// drops them all, which the window accounting flags.
func TestMonitorDropRate(t *testing.T) {
	clk := vclock.NewVirtual(testbed.Epoch)
	m, err := core.NewManager(core.Config{
		Node: mnet.MustParseAddr("10.0.0.1"), Clock: clk, Model: core.SingleThreaded,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	defer m.Close()
	src := core.NewProtocol("src")
	src.SetTuple(event.Tuple{Provided: []event.Type{event.HelloIn}})
	if err := m.Deploy(src); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	mon := inspect.NewMonitor(testbed.Epoch, nil, inspect.MonitorConfig{})
	mon.Watch(inspect.Target{Mgr: m})

	// First check establishes the baseline window.
	if r := mon.Check(clk.Now()); !r.Healthy() {
		t.Errorf("baseline check not healthy:\n%s", r)
	}
	for i := 0; i < 10; i++ {
		_ = src.Emit(&event.Event{Type: event.HelloIn})
	}
	r := mon.Check(clk.Now())
	if got := findingChecks(r); got["drop-rate"] != 1 {
		t.Errorf("want one drop-rate finding, got:\n%s", r)
	}
	// A quiet window afterwards is healthy again.
	if r := mon.Check(clk.Now()); !r.Healthy() {
		t.Errorf("quiet window not healthy:\n%s", r)
	}
}

// TestMonitorQueueMetrics: dedicated-queue watermark and overflow
// watchdogs read the core's instrument names from the shared registry.
func TestMonitorQueueMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Gauge("core_dedicated_depth:aodv").Set(600)
	reg.Counter("core_dedicated_dropped:aodv").Add(5)
	mon := inspect.NewMonitor(testbed.Epoch, reg, inspect.MonitorConfig{})

	r := mon.Check(testbed.Epoch)
	got := findingChecks(r)
	if got["queue-watermark"] != 1 || got["queue-overflow"] != 1 {
		t.Errorf("want queue-watermark and queue-overflow findings, got:\n%s", r)
	}
	// Overflow is windowed: with no new drops only the watermark persists.
	r = mon.Check(testbed.Epoch.Add(time.Second))
	got = findingChecks(r)
	if got["queue-watermark"] != 1 || got["queue-overflow"] != 0 {
		t.Errorf("second window want only queue-watermark, got:\n%s", r)
	}
	reg.Gauge("core_dedicated_depth:aodv").Set(3)
	if r := mon.Check(testbed.Epoch.Add(2 * time.Second)); !r.Healthy() {
		t.Errorf("drained queue still flagged:\n%s", r)
	}
}

// TestMonitorNeighborChurn: a flurry of neighbourhood changes beyond the
// threshold in one window is flagged, and the counter resets per window.
func TestMonitorNeighborChurn(t *testing.T) {
	clk := vclock.NewVirtual(testbed.Epoch)
	m, err := core.NewManager(core.Config{
		Node: mnet.MustParseAddr("10.0.0.1"), Clock: clk, Model: core.SingleThreaded,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	defer m.Close()
	nd := core.NewProtocol("nd")
	nd.SetTuple(event.Tuple{Provided: []event.Type{event.NhoodChange}})
	if err := m.Deploy(nd); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	mon := inspect.NewMonitor(testbed.Epoch, nil, inspect.MonitorConfig{ChurnThreshold: 4})
	mon.Watch(inspect.Target{Mgr: m})

	for i := 0; i < 6; i++ {
		_ = nd.Emit(&event.Event{Type: event.NhoodChange})
	}
	r := mon.Check(clk.Now())
	if got := findingChecks(r); got["neighbor-churn"] != 1 {
		t.Errorf("want one neighbor-churn finding, got:\n%s", r)
	}
	if r := mon.Check(clk.Now()); findingChecks(r)["neighbor-churn"] != 0 {
		t.Errorf("churn counter did not reset:\n%s", r)
	}
}
