package inspect

import (
	"fmt"
	"strings"
)

// DOT renders the snapshot as a Graphviz digraph: one cluster per node
// labelled with its concurrency model, one box per unit (doubled borders
// for dedicated-thread units, a dashed border for stopped protocols), and
// one edge per derived event binding. The output is deterministic — it
// derives purely from the (already sorted) snapshot — so it can be diffed
// textually and round-trips through the JSON form.
func (s Snapshot) DOT() string {
	var b strings.Builder
	b.WriteString("digraph manetkit {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"Helvetica\"];\n")
	for i, n := range s.Nodes {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n", i)
		fmt.Fprintf(&b, "    label=%q;\n", n.Node+"  ["+n.Model+"]")
		for _, u := range n.Units {
			attrs := []string{fmt.Sprintf("label=%q", dotUnitLabel(u))}
			if u.Dedicated {
				attrs = append(attrs, "peripheries=2")
			}
			if len(u.Components) > 0 && !u.Started {
				attrs = append(attrs, "style=dashed")
			}
			fmt.Fprintf(&b, "    %q [%s];\n", n.Node+"/"+u.Name, strings.Join(attrs, ", "))
		}
		for _, e := range n.Bindings {
			fmt.Fprintf(&b, "    %q -> %q [label=%q, fontsize=9];\n",
				n.Node+"/"+e.From, n.Node+"/"+e.To, e.Receptacle)
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// dotUnitLabel compresses a unit's tuple into a two-line box label:
// name on top, "req -> prov" beneath.
func dotUnitLabel(u UnitSnapshot) string {
	req := strings.Join(u.Required, ",")
	prov := strings.Join(u.Provided, ",")
	if req == "" && prov == "" {
		return u.Name
	}
	return fmt.Sprintf("%s\nreq: %s\nprov: %s", u.Name, req, prov)
}
