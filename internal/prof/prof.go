// Package prof is a dependency-free reader for pprof profiles
// (profile.proto): just enough protobuf to turn the gzipped dumps
// runtime/pprof writes into flat per-function sample totals. The
// evaluation campaign uses it to embed top-N hot symbols in its
// machine-readable report, so "ComputeRoutes is ~60% of CPU at 1k nodes"
// is a tracked artifact instead of folklore.
//
// Only the fields the flat view needs are decoded: sample types, samples
// (leaf-first location stacks and values), locations (their first line's
// function) and function names. Everything else is skipped field-by-field
// per the protobuf wire format, so profiles from future Go runtimes keep
// parsing.
package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// ValueType names one sample dimension, e.g. {Type: "cpu", Unit:
// "nanoseconds"} or {Type: "inuse_space", Unit: "bytes"}.
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// Sample is one profile sample: a leaf-first location stack and one value
// per sample dimension.
type Sample struct {
	Locations []uint64
	Values    []int64
}

// Symbol is one entry of a flat top-N table.
type Symbol struct {
	Name string `json:"name"`
	// Flat is the value attributed to samples whose leaf is this symbol.
	Flat int64 `json:"flat"`
	// Share is Flat over the profile total for the same dimension.
	Share float64 `json:"share"`
}

// Profile is a decoded pprof profile.
type Profile struct {
	SampleTypes []ValueType
	Samples     []Sample

	funcName map[uint64]string // function id -> name
	locFunc  map[uint64]string // location id -> leaf-line function name
}

// Parse decodes a pprof profile, transparently gunzipping (runtime/pprof
// always writes gzip).
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		data = raw
	}

	// Pass 1: split the top-level message into raw sub-messages; the
	// string table may follow the records that reference it.
	var (
		strTable    []string
		sampleTypes [][]byte
		samples     [][]byte
		locations   [][]byte
		functions   [][]byte
	)
	d := &decoder{b: data}
	for d.more() {
		num, wire, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1, 2, 4, 5, 6: // sample_type, sample, location, function, string_table
			if wire != wireBytes {
				return nil, fmt.Errorf("prof: field %d: unexpected wire type %d", num, wire)
			}
			msg, err := d.bytesField()
			if err != nil {
				return nil, err
			}
			switch num {
			case 1:
				sampleTypes = append(sampleTypes, msg)
			case 2:
				samples = append(samples, msg)
			case 4:
				locations = append(locations, msg)
			case 5:
				functions = append(functions, msg)
			case 6:
				strTable = append(strTable, string(msg))
			}
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i uint64) string {
		if i < uint64(len(strTable)) {
			return strTable[i]
		}
		return ""
	}

	p := &Profile{
		funcName: make(map[uint64]string),
		locFunc:  make(map[uint64]string),
	}
	for _, msg := range sampleTypes {
		var typ, unit uint64
		if err := eachField(msg, func(num int, v uint64, _ []byte) {
			switch num {
			case 1:
				typ = v
			case 2:
				unit = v
			}
		}); err != nil {
			return nil, err
		}
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: str(typ), Unit: str(unit)})
	}
	for _, msg := range functions {
		var id, name uint64
		if err := eachField(msg, func(num int, v uint64, _ []byte) {
			switch num {
			case 1:
				id = v
			case 2:
				name = v
			}
		}); err != nil {
			return nil, err
		}
		p.funcName[id] = str(name)
	}
	for _, msg := range locations {
		var id, addr uint64
		var firstFunc uint64
		haveLine := false
		if err := eachField(msg, func(num int, v uint64, sub []byte) {
			switch num {
			case 1:
				id = v
			case 3:
				addr = v
			case 4:
				if haveLine || sub == nil {
					return
				}
				haveLine = true
				_ = eachField(sub, func(lnum int, lv uint64, _ []byte) {
					if lnum == 1 {
						firstFunc = lv
					}
				})
			}
		}); err != nil {
			return nil, err
		}
		name := p.funcName[firstFunc]
		if name == "" {
			name = fmt.Sprintf("0x%x", addr)
		}
		p.locFunc[id] = name
	}
	for _, msg := range samples {
		var s Sample
		if err := eachField(msg, func(num int, v uint64, packed []byte) {
			switch num {
			case 1:
				if packed != nil {
					s.Locations = append(s.Locations, unpackUints(packed)...)
				} else {
					s.Locations = append(s.Locations, v)
				}
			case 2:
				if packed != nil {
					for _, u := range unpackUints(packed) {
						s.Values = append(s.Values, int64(u))
					}
				} else {
					s.Values = append(s.Values, int64(v))
				}
			}
		}); err != nil {
			return nil, err
		}
		p.Samples = append(p.Samples, s)
	}
	if len(p.SampleTypes) == 0 {
		return nil, fmt.Errorf("prof: no sample types (not a pprof profile?)")
	}
	return p, nil
}

// DefaultValueIndex picks the dimension a human means by default: the
// "cpu" nanoseconds for CPU profiles, "inuse_space" for heap profiles,
// the last dimension otherwise.
func (p *Profile) DefaultValueIndex() int {
	for i, vt := range p.SampleTypes {
		if vt.Type == "cpu" {
			return i
		}
	}
	for i, vt := range p.SampleTypes {
		if vt.Type == "inuse_space" {
			return i
		}
	}
	return len(p.SampleTypes) - 1
}

// Total sums the given dimension over every sample.
func (p *Profile) Total(valueIdx int) int64 {
	var total int64
	for _, s := range p.Samples {
		if valueIdx < len(s.Values) {
			total += s.Values[valueIdx]
		}
	}
	return total
}

// LeafName resolves a sample's leaf function (pprof stacks are
// leaf-first).
func (p *Profile) LeafName(s Sample) string {
	if len(s.Locations) == 0 {
		return "(unknown)"
	}
	if name := p.locFunc[s.Locations[0]]; name != "" {
		return name
	}
	return "(unknown)"
}

// TopFlat returns the n hottest symbols by flat (leaf-attributed) value
// in the given dimension, descending, ties broken by name for
// deterministic output.
func (p *Profile) TopFlat(n, valueIdx int) []Symbol {
	flat := make(map[string]int64)
	var total int64
	for _, s := range p.Samples {
		if valueIdx >= len(s.Values) {
			continue
		}
		v := s.Values[valueIdx]
		total += v
		flat[p.LeafName(s)] += v
	}
	out := make([]Symbol, 0, len(flat))
	for name, v := range flat {
		if v == 0 {
			// Heap profiles carry freed-everything entries whose inuse
			// dimension is zero; an all-zero row says nothing.
			continue
		}
		sym := Symbol{Name: name, Flat: v}
		if total > 0 {
			sym.Share = float64(v) / float64(total)
		}
		out = append(out, sym)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Protobuf wire types used by profile.proto.
const (
	wireVarint = 0
	wire64     = 1
	wireBytes  = 2
	wire32     = 5
)

// decoder walks one protobuf message.
type decoder struct {
	b   []byte
	pos int
}

func (d *decoder) more() bool { return d.pos < len(d.b) }

func (d *decoder) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if d.pos >= len(d.b) {
			return 0, fmt.Errorf("prof: truncated varint")
		}
		c := d.b[d.pos]
		d.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, fmt.Errorf("prof: varint overflow")
		}
	}
}

func (d *decoder) tag() (num, wire int, err error) {
	t, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(t >> 3), int(t & 7), nil
}

func (d *decoder) bytesField() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b)-d.pos) {
		return nil, fmt.Errorf("prof: truncated bytes field")
	}
	out := d.b[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

func (d *decoder) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := d.varint()
		return err
	case wire64:
		if len(d.b)-d.pos < 8 {
			return fmt.Errorf("prof: truncated fixed64")
		}
		d.pos += 8
		return nil
	case wireBytes:
		_, err := d.bytesField()
		return err
	case wire32:
		if len(d.b)-d.pos < 4 {
			return fmt.Errorf("prof: truncated fixed32")
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("prof: unsupported wire type %d", wire)
	}
}

// eachField walks msg's fields. Varint fields invoke fn(num, value, nil);
// length-delimited fields invoke fn(num, 0, bytes). Other wire types are
// skipped.
func eachField(msg []byte, fn func(num int, v uint64, sub []byte)) error {
	d := &decoder{b: msg}
	for d.more() {
		num, wire, err := d.tag()
		if err != nil {
			return err
		}
		switch wire {
		case wireVarint:
			v, err := d.varint()
			if err != nil {
				return err
			}
			fn(num, v, nil)
		case wireBytes:
			sub, err := d.bytesField()
			if err != nil {
				return err
			}
			fn(num, 0, sub)
		default:
			if err := d.skip(wire); err != nil {
				return err
			}
		}
	}
	return nil
}

// unpackUints decodes a packed repeated varint field.
func unpackUints(b []byte) []uint64 {
	d := &decoder{b: b}
	var out []uint64
	for d.more() {
		v, err := d.varint()
		if err != nil {
			return out
		}
		out = append(out, v)
	}
	return out
}
