package prof

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"testing"
)

// spin burns CPU long enough for the profiler's 10ms sampler to land
// some hits. The sink defeats dead-code elimination.
var sink uint64

func spin(rounds int) {
	var x uint64 = 0x9e3779b97f4a7c15
	for i := 0; i < rounds; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	sink += x
}

// TestParseCPUProfile exercises the full path on a genuine profile: the
// runtime writes gzipped profile.proto, we decode it and attribute flat
// time to leaf symbols.
func TestParseCPUProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Fatalf("StartCPUProfile: %v", err)
	}
	for i := 0; i < 400; i++ {
		spin(1 << 18)
	}
	pprof.StopCPUProfile()

	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var hasCPU bool
	for _, st := range p.SampleTypes {
		if st.Type == "cpu" && st.Unit == "nanoseconds" {
			hasCPU = true
		}
	}
	if !hasCPU {
		t.Fatalf("sample types %+v lack cpu/nanoseconds", p.SampleTypes)
	}
	if len(p.Samples) == 0 {
		t.Skip("profiler collected no samples on this platform")
	}
	idx := p.DefaultValueIndex()
	if p.SampleTypes[idx].Type != "cpu" {
		t.Fatalf("DefaultValueIndex picked %+v", p.SampleTypes[idx])
	}
	if p.Total(idx) <= 0 {
		t.Fatalf("non-positive total %d over %d samples", p.Total(idx), len(p.Samples))
	}

	top := p.TopFlat(5, idx)
	if len(top) == 0 {
		t.Fatal("no top symbols from a busy-loop profile")
	}
	var total, prev int64
	prev = top[0].Flat + 1
	for _, s := range top {
		if s.Name == "" || s.Flat <= 0 {
			t.Fatalf("degenerate symbol %+v", s)
		}
		if s.Flat > prev {
			t.Fatalf("TopFlat not sorted descending: %+v", top)
		}
		prev = s.Flat
		total += s.Flat
		if s.Share <= 0 || s.Share > 1 {
			t.Fatalf("share out of range: %+v", s)
		}
	}
	if total > p.Total(idx) {
		t.Fatalf("top flats sum %d exceed profile total %d", total, p.Total(idx))
	}
}

// TestParseHeapProfile checks the in-use dimension selection on a real
// heap dump.
func TestParseHeapProfile(t *testing.T) {
	ballast := make([][]byte, 64)
	for i := range ballast {
		ballast[i] = make([]byte, 1<<16)
	}
	runtime.GC()
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatalf("heap WriteTo: %v", err)
	}
	runtime.KeepAlive(ballast)

	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	idx := p.DefaultValueIndex()
	if got := p.SampleTypes[idx].Type; got != "inuse_space" {
		t.Fatalf("heap default dimension %q, want inuse_space (types %+v)", got, p.SampleTypes)
	}
	if p.Total(idx) < 1<<20 {
		t.Fatalf("in-use total %d with 4MiB ballast live", p.Total(idx))
	}
	for _, s := range p.TopFlat(10, idx) {
		if s.Flat == 0 {
			t.Fatalf("zero-flat symbol leaked through TopFlat: %+v", s)
		}
	}
}

// TestParseRejectsGarbage: arbitrary bytes are an error, not a panic.
func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range [][]byte{nil, {0x1f, 0x8b}, []byte("not a profile"), {0xff, 0xff, 0xff}} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted garbage", bad)
		}
	}
}
