package telemetry

import (
	"encoding/json"
	"testing"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/inspect"
	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/trace"
	"manetkit/internal/vclock"
)

func newTestManager(t *testing.T) *core.Manager {
	t.Helper()
	m, err := core.NewManager(core.Config{
		Node:  mnet.MustParseAddr("10.0.0.1"),
		Clock: vclock.NewVirtual(testEpoch),
		Model: core.SingleThreaded,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestAttachTracerStreamsSpans(t *testing.T) {
	b := New(Config{Epoch: testEpoch})
	tr := trace.New(testEpoch, 16)
	AttachTracer(b, tr)
	sub := b.Subscribe(8, StreamSpans)

	tr.Record(testEpoch.Add(time.Second), trace.Span{
		Node: "10.0.0.1", Kind: trace.KindEmit, Event: "HELLO_IN",
	})
	b.Close()
	got := drain(sub)
	if len(got) != 1 {
		t.Fatalf("got %d span events, want 1", len(got))
	}
	ev := got[0]
	if ev.Stream != StreamSpans || ev.Kind != trace.KindEmit || ev.Node != "10.0.0.1" {
		t.Fatalf("envelope %+v", ev)
	}
	if ev.T != time.Second {
		t.Fatalf("event T %s, want the span's own offset 1s", ev.T)
	}
	var s trace.Span
	if err := json.Unmarshal(ev.Data, &s); err != nil {
		t.Fatal(err)
	}
	if s.Event != "HELLO_IN" || s.T != time.Second || s.Seq != 0 {
		t.Fatalf("payload span %+v: must carry the tracer-stamped Seq/T", s)
	}
}

// TestTracerDropHookCountsEvictions is the ring-overflow accounting
// satellite: every span the trace ring evicts fires the drop hook exactly
// once, so a wired trace_dropped_total counter equals Tracer.Dropped.
func TestTracerDropHookCountsEvictions(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := trace.New(testEpoch, 4)
	tr.SetDropHook(reg.Counter("trace_dropped_total").Inc)
	for i := 0; i < 10; i++ {
		tr.Record(testEpoch, trace.Span{Kind: trace.KindEmit})
	}
	if tr.Dropped() != 6 {
		t.Fatalf("tracer dropped %d, want 6 (10 records, capacity 4)", tr.Dropped())
	}
	if got := reg.Snapshot().Counters["trace_dropped_total"]; got != tr.Dropped() {
		t.Fatalf("trace_dropped_total = %d, want %d", got, tr.Dropped())
	}
}

func TestAttachJournalStreamsEntries(t *testing.T) {
	b := New(Config{Epoch: testEpoch})
	j := inspect.NewJournal(testEpoch)
	AttachJournal(b, j)
	sub := b.Subscribe(8, StreamJournal)

	m := newTestManager(t)
	j.Watch(m)
	p := core.NewProtocol("aodv")
	if err := m.Deploy(p); err != nil { // rewires -> journalled as deploy:aodv
		t.Fatal(err)
	}
	b.Close()

	got := drain(sub)
	if len(got) != j.Len() || len(got) == 0 {
		t.Fatalf("got %d journal events, journal has %d entries", len(got), j.Len())
	}
	want := j.Entries()[0]
	ev := got[0]
	if ev.Kind != want.Reason || ev.Node != want.Node || ev.T != want.T {
		t.Fatalf("event %+v vs entry %+v", ev, want)
	}
}

// TestAttachHealthStreamsTransitions drives a monitor through a
// degrade/recover cycle and checks the bus sees both level transitions
// with flap counts, and that the report's states carry since/flap data.
func TestAttachHealthStreamsTransitions(t *testing.T) {
	b := New(Config{Epoch: testEpoch})
	reg := metrics.NewRegistry()
	mon := inspect.NewMonitor(testEpoch, reg, inspect.MonitorConfig{})
	AttachHealth(b, mon)
	sub := b.Subscribe(8, StreamHealth)

	reg.Gauge("core_dedicated_depth:aodv").Set(600) // past the watermark
	r1 := mon.Check(testEpoch.Add(time.Second))
	reg.Gauge("core_dedicated_depth:aodv").Set(3)
	r2 := mon.Check(testEpoch.Add(4 * time.Second))
	b.Close()

	got := drain(sub)
	if len(got) != 2 {
		t.Fatalf("got %d health events, want 2 (ok->warn, warn->ok)", len(got))
	}
	if got[0].Kind != string(inspect.LevelWarn) || got[1].Kind != string(inspect.LevelOK) {
		t.Fatalf("transition kinds %q, %q", got[0].Kind, got[1].Kind)
	}
	if got[0].Node != "aodv" {
		t.Fatalf("transition key %q, want aodv", got[0].Node)
	}
	var tr2 inspect.Transition
	if err := json.Unmarshal(got[1].Data, &tr2); err != nil {
		t.Fatal(err)
	}
	if tr2.From != inspect.LevelWarn || tr2.To != inspect.LevelOK || tr2.Flaps != 2 {
		t.Fatalf("recovery transition %+v, want warn->ok flaps 2", tr2)
	}
	if tr2.T != 4*time.Second {
		t.Fatalf("transition T %s, want the check's virtual offset 4s", tr2.T)
	}

	// The reports expose the same state machine.
	if len(r1.States) != 1 || r1.States[0].Level != inspect.LevelWarn ||
		r1.States[0].Since != time.Second || r1.States[0].Flaps != 1 {
		t.Fatalf("r1 states %+v", r1.States)
	}
	if r2.States[0].Level != inspect.LevelOK || r2.States[0].Since != 4*time.Second ||
		r2.States[0].Flaps != 2 {
		t.Fatalf("r2 states %+v", r2.States)
	}
}

func TestSamplerDeltas(t *testing.T) {
	clk := vclock.NewVirtual(testEpoch)
	reg := metrics.NewRegistry()
	b := New(Config{Epoch: testEpoch})
	sub := b.Subscribe(8, StreamMetrics)
	s := NewSampler(b, reg, clk, time.Second)

	reg.Counter("frames").Add(5) // pre-Start activity is baseline, not delta
	reg.Gauge("depth").Set(7)
	s.Start()
	defer s.Stop()

	reg.Counter("frames").Add(3)
	reg.Gauge("depth").Set(9)
	clk.Advance(time.Second) // first sample: the changes since Start
	clk.Advance(time.Second) // second sample: nothing changed, no event
	reg.Counter("frames").Add(2)
	clk.Advance(time.Second) // third sample: counter delta only
	s.Stop()
	b.Close()

	got := drain(sub)
	if len(got) != 2 {
		t.Fatalf("got %d metrics events, want 2 (quiet windows publish nothing)", len(got))
	}
	var d1, d2 MetricsDelta
	if err := json.Unmarshal(got[0].Data, &d1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(got[1].Data, &d2); err != nil {
		t.Fatal(err)
	}
	if d1.Counters["frames"] != 3 || d1.Gauges["depth"] != 9 {
		t.Fatalf("first delta %+v, want frames+3 depth=9 (not the pre-Start totals)", d1)
	}
	if got[0].T != time.Second {
		t.Fatalf("first sample at %s, want the virtual 1s mark", got[0].T)
	}
	if d2.Counters["frames"] != 2 || len(d2.Gauges) != 0 {
		t.Fatalf("third-window delta %+v, want frames+2 only", d2)
	}
}

// TestSamplerInactiveAdvancesBaseline: while the bus is inactive the
// sampler still moves its baseline, so a subscriber attaching later sees
// deltas from attachment rather than a catch-all burst.
func TestSamplerInactiveAdvancesBaseline(t *testing.T) {
	clk := vclock.NewVirtual(testEpoch)
	reg := metrics.NewRegistry()
	b := New(Config{Epoch: testEpoch, RecorderCapacity: -1}) // inactive until subscribed
	s := NewSampler(b, reg, clk, time.Second)
	s.Start()
	defer s.Stop()

	reg.Counter("frames").Add(5)
	s.SampleNow() // inactive: publishes nothing, advances baseline
	sub := b.Subscribe(8, StreamMetrics)
	reg.Counter("frames").Add(2)
	s.SampleNow()
	b.Close()

	got := drain(sub)
	if len(got) != 1 {
		t.Fatalf("got %d metrics events, want 1", len(got))
	}
	var d MetricsDelta
	if err := json.Unmarshal(got[0].Data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Counters["frames"] != 2 {
		t.Fatalf("delta %+v, want frames+2 (the 5 pre-subscription increments skipped)", d)
	}
}
