// Package telemetry is MANETKit's streaming observability bus: the sensor
// plane the closed-loop policy engine and the multi-tenant mkemu server
// stand on. Five event streams — metrics deltas, trace spans, health state
// transitions, rewire-journal entries and per-shard engine epochs — flow
// through one Bus, which fans them out to subscribers and (optionally)
// into a bounded ring-buffer flight recorder for post-mortem replay.
//
// The contract with the hot path:
//
//   - Zero subscribers and no recorder cost one atomic load per potential
//     publish (Active is false, so no payload is ever encoded). The PR-2
//     <5% overhead guard and the PR-4 zero-alloc dispatch gate both hold
//     with a bus attached, pinned by TestTelemetryOverheadGuard.
//   - Publishing never blocks. A subscriber whose channel is full loses
//     the event and its drop counter advances; the accounting is exact:
//     published == delivered + dropped, per subscriber, always.
//   - Recorded streams are deterministic: every event is stamped with a
//     virtual-clock offset and a bus sequence number assigned in publish
//     order. Under vclock.Virtual all publishers run on the clock
//     goroutine (timer callbacks, epoch commits, rewire hooks), so the
//     recorder's contents — and hence Fingerprint — are byte-identical
//     for the same seed at any GOMAXPROCS. Nothing GOMAXPROCS-dependent
//     (worker counts, wall time) is allowed into an Event.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stream names. A subscriber names the streams it wants; an empty list
// subscribes to all of them.
const (
	StreamMetrics = "metrics" // metric counter/gauge deltas (Sampler)
	StreamSpans   = "spans"   // trace spans, live as they are recorded
	StreamHealth  = "health"  // health state transitions (inspect.Monitor)
	StreamJournal = "journal" // rewire-journal entries (inspect.Journal)
	StreamEngine  = "engine"  // per-epoch shard telemetry (emunet engine)
)

// Streams lists the stream names in a stable order.
func Streams() []string {
	return []string{StreamEngine, StreamHealth, StreamJournal, StreamMetrics, StreamSpans}
}

// Event is one bus record. Field order is the NDJSON field order;
// timestamps are virtual-clock offsets, never wall time, so recorded
// streams replay byte-identically.
type Event struct {
	// Seq is the bus-assigned sequence number, in publish order.
	Seq uint64 `json:"seq"`
	// T is the virtual-clock offset from the bus epoch, in nanoseconds.
	T time.Duration `json:"t_ns"`
	// Stream is one of the Stream* constants.
	Stream string `json:"stream"`
	// Kind subdivides a stream (span kind, health level, journal reason).
	Kind string `json:"kind,omitempty"`
	// Node is the originating node address, when the event has one.
	Node string `json:"node,omitempty"`
	// Data is the stream-specific payload, pre-encoded at publish time.
	Data json.RawMessage `json:"data"`
}

// DefaultRecorderCapacity bounds the flight recorder when Config leaves
// RecorderCapacity zero.
const DefaultRecorderCapacity = 1 << 15

// DefaultSubscriberBuffer is the channel depth Subscribe applies when
// given a non-positive buffer.
const DefaultSubscriberBuffer = 256

// Config tunes a Bus.
type Config struct {
	// Epoch anchors event timestamps; use the deployment's virtual-clock
	// epoch so bus offsets line up with trace and journal offsets.
	Epoch time.Time
	// RecorderCapacity sizes the flight-recorder ring: 0 means
	// DefaultRecorderCapacity, negative disables recording entirely (the
	// bus is then pure fan-out and costs nothing without subscribers).
	RecorderCapacity int
}

// Bus is the streaming observability bus. Construct with New; a nil *Bus
// is a valid no-op (Active is false, Publish discards).
type Bus struct {
	epoch time.Time

	// active is true whenever publishing can have an effect: the recorder
	// is enabled or at least one subscriber is attached. Publishers read
	// it with one atomic load before doing any encoding work.
	active atomic.Bool

	mu      sync.Mutex
	seq     uint64
	ring    []Event // flight recorder; nil when disabled
	head    int     // index of the oldest recorded event
	count   int
	evicted uint64 // recorder ring overwrites
	subs    map[*Subscription]struct{}
	closed  bool
}

// New creates a bus. See Config for the recorder policy.
func New(cfg Config) *Bus {
	b := &Bus{subs: make(map[*Subscription]struct{})}
	b.epoch = cfg.Epoch
	switch {
	case cfg.RecorderCapacity == 0:
		b.ring = make([]Event, DefaultRecorderCapacity)
	case cfg.RecorderCapacity > 0:
		b.ring = make([]Event, cfg.RecorderCapacity)
	}
	b.active.Store(b.ring != nil)
	return b
}

// Epoch returns the timestamp origin of the bus.
func (b *Bus) Epoch() time.Time { return b.epoch }

// Active reports whether a publish could currently have any effect. The
// instrumentation hooks call this before encoding a payload, so an idle
// bus costs one atomic load per event source.
func (b *Bus) Active() bool { return b != nil && b.active.Load() }

// Publish encodes payload and fans it out, stamping now as an offset from
// the bus epoch. It never blocks: full subscribers drop the event. The
// blockingpub analyzer proves that statically for everything reachable
// from here.
//
//mk:nonblocking
func (b *Bus) Publish(now time.Time, stream, kind, node string, payload any) {
	if !b.Active() {
		return
	}
	b.PublishAt(now.Sub(b.epoch), stream, kind, node, payload)
}

// PublishAt is Publish for sources that already carry an epoch offset
// (trace spans, journal entries, health transitions), avoiding a second
// clock read and guaranteeing the bus timestamp equals the source's.
//
//mk:nonblocking
func (b *Bus) PublishAt(t time.Duration, stream, kind, node string, payload any) {
	if !b.Active() {
		return
	}
	data, err := json.Marshal(payload)
	if err != nil {
		// Payloads are the runtime's own structs; an encoding failure is a
		// programming error. Surface it as a bus event rather than losing
		// it silently.
		data, _ = json.Marshal(map[string]string{"encode_error": err.Error()})
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	ev := Event{Seq: b.seq, T: t, Stream: stream, Kind: kind, Node: node, Data: data}
	b.seq++
	if b.ring != nil {
		if b.count == len(b.ring) {
			b.ring[b.head] = ev
			b.head = (b.head + 1) % len(b.ring)
			b.evicted++
		} else {
			b.ring[(b.head+b.count)%len(b.ring)] = ev
			b.count++
		}
	}
	for s := range b.subs {
		if !s.wants(stream) {
			continue
		}
		s.published.Add(1)
		select {
		case s.ch <- ev:
			s.delivered.Add(1)
		default:
			s.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// Subscribe attaches a consumer for the named streams (none = all) with
// the given channel buffer (<= 0 = DefaultSubscriberBuffer). The returned
// subscription's channel is closed by Subscription.Close or Bus.Close. On
// a closed bus, Subscribe returns an already-closed subscription.
func (b *Bus) Subscribe(buffer int, streams ...string) *Subscription {
	return b.subscribe(buffer, streams, false)
}

// SubscribeWithBacklog is Subscribe, but the subscription's channel is
// pre-loaded with the recorder's matching contents (oldest first) before
// any live event, with no gap and no duplicate: the snapshot and the
// attachment happen under one lock. The buffer is grown to hold the
// backlog, so a fresh subscriber always sees the recorded history even if
// it is slow to start reading.
func (b *Bus) SubscribeWithBacklog(buffer int, streams ...string) *Subscription {
	return b.subscribe(buffer, streams, true)
}

func (b *Bus) subscribe(buffer int, streams []string, backlog bool) *Subscription {
	if buffer <= 0 {
		buffer = DefaultSubscriberBuffer
	}
	s := &Subscription{bus: b}
	if len(streams) > 0 {
		s.streams = make(map[string]bool, len(streams))
		for _, name := range streams {
			s.streams[name] = true
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var hist []Event
	if backlog && b.ring != nil {
		for i := 0; i < b.count; i++ {
			ev := b.ring[(b.head+i)%len(b.ring)]
			if s.wants(ev.Stream) {
				hist = append(hist, ev)
			}
		}
		if buffer < len(hist)+DefaultSubscriberBuffer {
			buffer = len(hist) + DefaultSubscriberBuffer
		}
	}
	s.ch = make(chan Event, buffer)
	for _, ev := range hist {
		s.published.Add(1)
		s.delivered.Add(1)
		s.ch <- ev
	}
	if b.closed {
		s.closed = true
		close(s.ch)
		return s
	}
	b.subs[s] = struct{}{}
	b.active.Store(true)
	return s
}

// unsubscribe detaches s and closes its channel exactly once.
func (b *Bus) unsubscribe(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if s.closed {
		return
	}
	delete(b.subs, s)
	s.closed = true
	close(s.ch)
	if len(b.subs) == 0 && b.ring == nil {
		b.active.Store(false)
	}
}

// Close shuts the bus down: every subscriber channel is closed (consumers
// see their range loop end) and later publishes are discarded. The flight
// recorder's contents remain readable.
func (b *Bus) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	b.active.Store(false)
	for s := range b.subs {
		s.closed = true
		close(s.ch)
	}
	b.subs = make(map[*Subscription]struct{})
}

// Seq returns the number of events published so far.
func (b *Bus) Seq() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Evicted returns how many recorded events the flight-recorder ring has
// overwritten.
func (b *Bus) Evicted() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.evicted
}

// Events copies out the flight recorder, oldest first (nil when recording
// is disabled).
func (b *Bus) Events() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ring == nil || b.count == 0 {
		return nil
	}
	out := make([]Event, b.count)
	for i := 0; i < b.count; i++ {
		out[i] = b.ring[(b.head+i)%len(b.ring)]
	}
	return out
}

// SubStats is one subscriber's exact delivery accounting.
type SubStats struct {
	Published uint64 `json:"published"` // events matching the subscription
	Delivered uint64 `json:"delivered"` // events that entered the channel
	Dropped   uint64 `json:"dropped"`   // events lost to a full channel
}

// Subscription is one attached consumer. Read events from C; Close when
// done. All counters are exact: Published == Delivered + Dropped at every
// instant a consumer can observe.
type Subscription struct {
	bus     *Bus
	streams map[string]bool // nil = all streams
	ch      chan Event
	closed  bool // guarded by bus.mu

	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
}

func (s *Subscription) wants(stream string) bool {
	return s.streams == nil || s.streams[stream]
}

// C is the event channel. It is closed by Close or Bus.Close.
func (s *Subscription) C() <-chan Event { return s.ch }

// Stats returns the subscription's delivery accounting. Call it after the
// channel has closed (or from the consumer between reads) for a stable
// published == delivered + dropped view.
func (s *Subscription) Stats() SubStats {
	return SubStats{
		Published: s.published.Load(),
		Delivered: s.delivered.Load(),
		Dropped:   s.dropped.Load(),
	}
}

// Close detaches the subscription from the bus and closes its channel.
// Safe to call more than once and concurrently with publishes.
func (s *Subscription) Close() {
	if s == nil || s.bus == nil {
		return
	}
	s.bus.unsubscribe(s)
}

// WriteNDJSON streams the flight recorder as one JSON event per line,
// oldest first — the `mkemu -record` dump format.
func (b *Bus) WriteNDJSON(w io.Writer) error {
	return WriteEvents(w, b.Events())
}

// WriteEvents writes events as NDJSON. The encoding is deterministic:
// fixed field order, integer timestamps, pre-encoded payloads.
func WriteEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEvents parses an NDJSON flight-recorder dump back into events.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("telemetry: dump line %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Fingerprint digests the flight recorder into a short stable hex string.
// Two runs with the same seed must produce equal fingerprints whatever
// GOMAXPROCS was — the byte-determinism gate of the recorded streams.
func (b *Bus) Fingerprint() string {
	return FingerprintEvents(b.Events())
}

// FingerprintEvents is Fingerprint over an explicit event slice, so a
// dump read back from disk (`mkemu -replay`) hashes identically to the
// bus it was written from.
func FingerprintEvents(events []Event) string {
	h := fnv.New64a()
	_ = WriteEvents(h, events)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Summary aggregates a flight-recorder dump for humans.
type Summary struct {
	Total    int            `json:"total"`
	ByStream map[string]int `json:"by_stream"`
	// Evicted is how many events the recorder overwrote before the dump
	// (inferred from the first surviving sequence number).
	Evicted uint64 `json:"evicted"`
	// FirstT and LastT bound the recorded virtual-time window.
	FirstT time.Duration `json:"first_t_ns"`
	LastT  time.Duration `json:"last_t_ns"`
}

// Summarize rolls a dump up into per-stream counts and its time window.
func Summarize(events []Event) Summary {
	s := Summary{ByStream: make(map[string]int)}
	for i, ev := range events {
		s.Total++
		s.ByStream[ev.Stream]++
		if i == 0 {
			s.Evicted = ev.Seq
			s.FirstT = ev.T
		}
		s.LastT = ev.T
	}
	return s
}

// String renders the summary as a compact single block.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d events, window %s .. %s, %d evicted before dump\n",
		s.Total, s.FirstT, s.LastT, s.Evicted)
	names := make([]string, 0, len(s.ByStream))
	for name := range s.ByStream {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %-8s %d\n", name, s.ByStream[name])
	}
	return b.String()
}
