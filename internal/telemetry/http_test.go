package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newStreamServer builds a bus pre-loaded with a known event mix and an
// httptest server with the live endpoints mounted.
func newStreamServer(t *testing.T) (*Bus, *httptest.Server) {
	t.Helper()
	b := New(Config{Epoch: testEpoch})
	mux := http.NewServeMux()
	RegisterStreamHandlers(mux, b)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	t.Cleanup(b.Close)
	for i := 0; i < 5; i++ {
		b.PublishAt(time.Duration(i)*time.Millisecond, StreamSpans, "emit", "10.0.0.1", payload{N: i})
	}
	b.PublishAt(5*time.Millisecond, StreamEngine, "epoch", "", payload{N: 5})
	b.PublishAt(6*time.Millisecond, StreamHealth, "warn", "n1", payload{N: 6})
	return b, srv
}

// TestStreamNDJSONBacklog: a closed bus with recorded history serves the
// full matching backlog as NDJSON and ends the response cleanly.
func TestStreamNDJSONBacklog(t *testing.T) {
	b, srv := newStreamServer(t)
	b.Close() // backlog survives close; the handler drains it and returns

	resp, err := http.Get(srv.URL + "/stream/spans?backlog=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body) // must terminate: bus is closed
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d NDJSON lines, want the 5 recorded spans:\n%s", len(lines), body)
	}
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if ev.Stream != StreamSpans || ev.Seq != uint64(i) {
			t.Fatalf("line %d: %+v (want spans stream, seq %d)", i, ev, i)
		}
	}
}

// TestStreamSSEFraming: ?format=sse switches to text/event-stream with
// event:/data: framing, multiplexing all streams on /stream.
func TestStreamSSEFraming(t *testing.T) {
	b, srv := newStreamServer(t)
	b.Close()

	resp, err := http.Get(srv.URL + "/stream?backlog=1&format=sse")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	frames := strings.Split(strings.TrimSpace(string(body)), "\n\n")
	if len(frames) != 7 {
		t.Fatalf("got %d SSE frames, want 7:\n%s", len(frames), body)
	}
	if !strings.HasPrefix(frames[5], "event: engine\ndata: {") {
		t.Fatalf("frame 5 framing wrong:\n%s", frames[5])
	}
	var ev Event
	data := strings.TrimPrefix(strings.SplitN(frames[6], "\ndata: ", 2)[1], "data: ")
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatalf("frame 6 data not JSON: %v", err)
	}
	if ev.Stream != StreamHealth || ev.Kind != "warn" {
		t.Fatalf("frame 6 event %+v", ev)
	}
}

// TestStreamLiveDelivery: a client with no backlog receives events
// published after it connected, and the response ends when the bus
// closes mid-stream.
func TestStreamLiveDelivery(t *testing.T) {
	b, srv := newStreamServer(t)

	resp, err := http.Get(srv.URL + "/stream/engine")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The handler subscribes at its own pace; keep publishing until the
	// client has read one full line, then close the bus.
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				b.Close()
				return
			default:
				b.PublishAt(time.Duration(i)*time.Millisecond, StreamEngine, "epoch", "", payload{N: i})
				time.Sleep(time.Millisecond)
			}
		}
	}()
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	close(stop)
	if err != nil {
		t.Fatalf("reading first live event: %v", err)
	}
	var ev Event
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Stream != StreamEngine {
		t.Fatalf("live event %+v, want engine stream", ev)
	}
	// After close the remaining body drains and the stream terminates.
	if _, err := io.ReadAll(br); err != nil {
		t.Fatalf("stream did not terminate cleanly after bus close: %v", err)
	}
}

func TestStreamHandlerNilBus(t *testing.T) {
	srv := httptest.NewServer(StreamHandler(nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 when telemetry is disabled", resp.StatusCode)
	}
}
