// Live streaming endpoints: each bus stream is served as NDJSON (one
// event per line, the default) or SSE (text/event-stream, when the client
// asks for it), flushed per event — `curl -N http://host/stream/spans`
// watches a run reconfigure live.
package telemetry

import (
	"encoding/json"
	"net/http"
	"strings"
)

// RegisterStreamHandlers mounts one live endpoint per stream on mux:
// /stream/metrics, /stream/spans, /stream/health, /stream/journal and
// /stream/engine, plus /stream (all streams multiplexed).
func RegisterStreamHandlers(mux *http.ServeMux, b *Bus) {
	mux.Handle("/stream", StreamHandler(b))
	for _, name := range Streams() {
		mux.Handle("/stream/"+name, StreamHandler(b, name))
	}
}

// StreamHandler serves the named streams (none = all) live. Each request
// gets its own subscription with the bus's per-subscriber backpressure: a
// client that stops reading loses events, never stalls the emulation. The
// response ends when the client disconnects or the bus closes.
//
// Query parameters:
//
//	?backlog=1   prepend the flight recorder's matching history
//	?format=sse  force SSE framing (also chosen by Accept: text/event-stream)
//	?buffer=N    subscriber channel depth (default 1024)
func StreamHandler(b *Bus, streams ...string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if b == nil {
			http.Error(w, "telemetry disabled", http.StatusNotFound)
			return
		}
		sse := r.URL.Query().Get("format") == "sse" ||
			strings.Contains(r.Header.Get("Accept"), "text/event-stream")
		buffer := 1024
		if q := r.URL.Query().Get("buffer"); q != "" {
			var n int
			for _, c := range q {
				if c < '0' || c > '9' {
					n = 0
					break
				}
				n = n*10 + int(c-'0')
			}
			if n > 0 {
				buffer = n
			}
		}
		var sub *Subscription
		if r.URL.Query().Get("backlog") != "" {
			sub = b.SubscribeWithBacklog(buffer, streams...)
		} else {
			sub = b.Subscribe(buffer, streams...)
		}
		defer sub.Close()

		if sse {
			w.Header().Set("Content-Type", "text/event-stream")
		} else {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("X-Accel-Buffering", "no")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		if flusher != nil {
			flusher.Flush()
		}

		ctx := r.Context()
		for {
			select {
			case <-ctx.Done():
				return
			case ev, ok := <-sub.C():
				if !ok {
					return // bus closed: clean end of stream
				}
				line, err := json.Marshal(ev)
				if err != nil {
					return
				}
				if sse {
					if _, err := w.Write([]byte("event: " + ev.Stream + "\ndata: ")); err != nil {
						return
					}
				}
				if _, err := w.Write(line); err != nil {
					return
				}
				suffix := "\n"
				if sse {
					suffix = "\n\n"
				}
				if _, err := w.Write([]byte(suffix)); err != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
		}
	})
}
