// Wiring between the bus and the runtime's event sources. telemetry is
// the integration layer: trace, inspect and emunet know nothing about the
// bus — they each expose a narrow observer hook, and the Attach functions
// here adapt those hooks into published events. That keeps the dependency
// arrows pointing one way (no import cycles) and keeps the sources free
// of any bus cost when nothing is attached.
package telemetry

import (
	"sync"
	"time"

	"manetkit/internal/emunet"
	"manetkit/internal/inspect"
	"manetkit/internal/metrics"
	"manetkit/internal/trace"
	"manetkit/internal/vclock"
)

// AttachTracer streams every recorded span onto the bus (StreamSpans).
// The span's own epoch offset becomes the event timestamp, so the tracer
// and the bus must share an epoch. The observer runs under the tracer's
// lock: keep the bus the only consumer work done there.
func AttachTracer(b *Bus, tr *trace.Tracer) {
	tr.SetObserver(func(s trace.Span) {
		if !b.Active() {
			return
		}
		b.PublishAt(s.T, StreamSpans, s.Kind, s.Node, s)
	})
}

// AttachJournal streams every rewire-journal entry onto the bus
// (StreamJournal), timestamped with the entry's own offset.
func AttachJournal(b *Bus, j *inspect.Journal) {
	j.SetObserver(func(e inspect.Entry) {
		if !b.Active() {
			return
		}
		b.PublishAt(e.T, StreamJournal, e.Reason, e.Node, e)
	})
}

// AttachHealth streams every health level transition onto the bus
// (StreamHealth); the event kind is the level transitioned to.
func AttachHealth(b *Bus, m *inspect.Monitor) {
	m.SetObserver(func(t inspect.Transition) {
		if !b.Active() {
			return
		}
		b.PublishAt(t.T, StreamHealth, string(t.To), t.Key, t)
	})
}

// AttachEngine streams one event per committed engine epoch onto the bus
// (StreamEngine) — events per epoch, shard occupancy, parallel
// eligibility, commit lag and residual queue depth.
func AttachEngine(b *Bus, n *emunet.Network) {
	n.SetEpochObserver(func(es emunet.EpochStats) {
		if !b.Active() {
			return
		}
		b.Publish(es.Now, StreamEngine, "epoch", "", es)
	})
}

// MetricsDelta is one Sampler observation: the counter increments since
// the previous sample and the current value of every gauge that changed.
// Histograms are deliberately not sampled — some record wall-clock
// handler latencies, which would poison the recorded streams'
// determinism.
type MetricsDelta struct {
	Counters map[string]uint64 `json:"counters,omitempty"`
	Gauges   map[string]int64  `json:"gauges,omitempty"`
}

// Sampler periodically diffs a metrics registry and publishes the deltas
// onto the bus (StreamMetrics). It paces itself on the deployment clock,
// so under vclock.Virtual the samples land at deterministic virtual
// instants and the recorded stream replays byte-identically. Samples with
// no change publish nothing.
type Sampler struct {
	bus      *Bus
	reg      *metrics.Registry
	clock    vclock.Clock
	interval time.Duration

	mu      sync.Mutex
	timer   vclock.Timer
	stopped bool
	lastC   map[string]uint64
	lastG   map[string]int64
}

// DefaultSampleInterval paces a Sampler given a non-positive interval.
const DefaultSampleInterval = time.Second

// NewSampler creates a sampler over reg publishing to b every interval of
// the given clock. Call Start to begin.
func NewSampler(b *Bus, reg *metrics.Registry, clock vclock.Clock, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	return &Sampler{
		bus:      b,
		reg:      reg,
		clock:    clock,
		interval: interval,
		lastC:    make(map[string]uint64),
		lastG:    make(map[string]int64),
	}
}

// Start arms the first sample timer. The baseline is the registry's
// current state: the first sample reports deltas from Start, not from
// zero.
func (s *Sampler) Start() {
	if s == nil || s.reg == nil || s.bus == nil {
		return
	}
	snap := s.reg.Snapshot()
	s.mu.Lock()
	for name, v := range snap.Counters {
		s.lastC[name] = v
	}
	for name, v := range snap.Gauges {
		s.lastG[name] = v
	}
	if !s.stopped {
		s.timer = s.clock.AfterFunc(s.interval, s.tick)
	}
	s.mu.Unlock()
}

// Stop cancels the pending sample. Idempotent.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stopped = true
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	s.mu.Unlock()
}

// tick takes one sample and re-arms.
func (s *Sampler) tick() {
	now := s.clock.Now()
	s.sample(now)
	s.mu.Lock()
	if !s.stopped {
		s.timer = s.clock.AfterFunc(s.interval, s.tick)
	}
	s.mu.Unlock()
}

// sample publishes the registry delta since the previous sample (or
// Start). Exposed to tests via SampleNow.
func (s *Sampler) sample(now time.Time) {
	if !s.bus.Active() {
		// Keep the baseline advancing so a subscriber attaching later sees
		// deltas from attachment, not a giant catch-all.
		snap := s.reg.Snapshot()
		s.mu.Lock()
		for name, v := range snap.Counters {
			s.lastC[name] = v
		}
		for name, v := range snap.Gauges {
			s.lastG[name] = v
		}
		s.mu.Unlock()
		return
	}
	snap := s.reg.Snapshot()
	delta := MetricsDelta{}
	s.mu.Lock()
	for name, v := range snap.Counters {
		if prev := s.lastC[name]; v != prev {
			if delta.Counters == nil {
				delta.Counters = make(map[string]uint64)
			}
			delta.Counters[name] = v - prev
			s.lastC[name] = v
		}
	}
	for name, v := range snap.Gauges {
		if prev, seen := s.lastG[name]; !seen || v != prev {
			if delta.Gauges == nil {
				delta.Gauges = make(map[string]int64)
			}
			delta.Gauges[name] = v
			s.lastG[name] = v
		}
	}
	s.mu.Unlock()
	if delta.Counters == nil && delta.Gauges == nil {
		return
	}
	s.bus.Publish(now, StreamMetrics, "delta", "", delta)
}

// SampleNow takes one unscheduled sample at the clock's current instant —
// used at shutdown so the recorder's last metrics event covers the tail
// of the run.
func (s *Sampler) SampleNow() {
	if s == nil || s.reg == nil || s.bus == nil {
		return
	}
	s.sample(s.clock.Now())
}
