package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

var testEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

type payload struct {
	N int `json:"n"`
}

// publishN publishes n events on stream with increasing timestamps.
func publishN(b *Bus, stream string, n int) {
	for i := 0; i < n; i++ {
		b.PublishAt(time.Duration(i)*time.Millisecond, stream, "k", "", payload{N: i})
	}
}

// drain empties a closed subscription's channel.
func drain(s *Subscription) []Event {
	var out []Event
	for ev := range s.C() {
		out = append(out, ev)
	}
	return out
}

func TestPublishSubscribeFiltering(t *testing.T) {
	b := New(Config{Epoch: testEpoch})
	all := b.Subscribe(64)
	spans := b.Subscribe(64, StreamSpans)

	b.PublishAt(time.Second, StreamSpans, "emit", "10.0.0.1", payload{N: 1})
	b.PublishAt(2*time.Second, StreamEngine, "epoch", "", payload{N: 2})
	b.Publish(testEpoch.Add(3*time.Second), StreamHealth, "warn", "n1", payload{N: 3})
	b.Close()

	got := drain(all)
	if len(got) != 3 {
		t.Fatalf("all-streams subscriber got %d events, want 3", len(got))
	}
	for i, ev := range got {
		if ev.Seq != uint64(i) {
			t.Errorf("event %d: seq %d, want %d (publish order)", i, ev.Seq, i)
		}
	}
	if got[0].Stream != StreamSpans || got[0].Kind != "emit" || got[0].Node != "10.0.0.1" {
		t.Errorf("event 0 envelope wrong: %+v", got[0])
	}
	if got[2].T != 3*time.Second {
		t.Errorf("Publish stamped T %s, want 3s (epoch-relative)", got[2].T)
	}
	var p payload
	if err := json.Unmarshal(got[1].Data, &p); err != nil || p.N != 2 {
		t.Errorf("payload roundtrip: %v / %+v", err, p)
	}

	only := drain(spans)
	if len(only) != 1 || only[0].Stream != StreamSpans {
		t.Fatalf("spans-only subscriber got %+v, want the one span event", only)
	}
	st := spans.Stats()
	if st.Published != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Errorf("spans stats %+v: filter must not count non-matching events", st)
	}
}

// TestDropAccountingExactness pins the backpressure contract: a full
// subscriber loses events, never stalls the publisher, and
// published == delivered + dropped exactly, with delivered equal to what
// the consumer actually reads.
func TestDropAccountingExactness(t *testing.T) {
	b := New(Config{Epoch: testEpoch})
	sub := b.Subscribe(4, StreamEngine)
	const total = 100
	publishN(b, StreamEngine, total)
	b.Close()

	got := drain(sub)
	st := sub.Stats()
	if st.Published != total {
		t.Fatalf("published %d, want %d", st.Published, total)
	}
	if st.Delivered != uint64(len(got)) {
		t.Fatalf("delivered counter %d but consumer read %d events", st.Delivered, len(got))
	}
	if st.Published != st.Delivered+st.Dropped {
		t.Fatalf("accounting broken: published %d != delivered %d + dropped %d",
			st.Published, st.Delivered, st.Dropped)
	}
	if st.Dropped != total-4 {
		t.Fatalf("dropped %d, want %d (buffer 4, nothing consumed)", st.Dropped, total-4)
	}
	// The events that survive are the oldest (drop-newest policy).
	for i, ev := range got {
		if ev.Seq != uint64(i) {
			t.Errorf("survivor %d has seq %d, want %d", i, ev.Seq, i)
		}
	}
}

func TestRecorderRingEviction(t *testing.T) {
	b := New(Config{Epoch: testEpoch, RecorderCapacity: 8})
	publishN(b, StreamEngine, 20)

	events := b.Events()
	if len(events) != 8 {
		t.Fatalf("recorder holds %d events, want 8", len(events))
	}
	if b.Evicted() != 12 {
		t.Fatalf("evicted %d, want 12", b.Evicted())
	}
	if events[0].Seq != 12 || events[7].Seq != 19 {
		t.Fatalf("ring window [%d..%d], want [12..19]", events[0].Seq, events[7].Seq)
	}
	sum := Summarize(events)
	if sum.Total != 8 || sum.Evicted != 12 || sum.ByStream[StreamEngine] != 8 {
		t.Fatalf("summary %+v", sum)
	}
	if sum.FirstT != 12*time.Millisecond || sum.LastT != 19*time.Millisecond {
		t.Fatalf("summary window [%s..%s]", sum.FirstT, sum.LastT)
	}
}

// TestInactiveBusIsFreeAndDormant: with the recorder disabled and no
// subscribers, Active is false, publishes are discarded before encoding,
// and attaching/detaching a subscriber toggles the flag.
func TestInactiveBusIsFreeAndDormant(t *testing.T) {
	b := New(Config{Epoch: testEpoch, RecorderCapacity: -1})
	if b.Active() {
		t.Fatal("recorder-less bus with no subscribers must be inactive")
	}
	// Publishing a value json.Marshal would choke on proves no encoding
	// happens on the inactive path.
	b.PublishAt(0, StreamEngine, "k", "", func() {})
	if b.Seq() != 0 {
		t.Fatalf("inactive publish advanced seq to %d", b.Seq())
	}
	sub := b.Subscribe(4)
	if !b.Active() {
		t.Fatal("bus with a subscriber must be active")
	}
	publishN(b, StreamEngine, 2)
	sub.Close()
	if b.Active() {
		t.Fatal("bus must go dormant when its last subscriber detaches")
	}
	if st := sub.Stats(); st.Published != 2 || st.Delivered != 2 {
		t.Fatalf("stats %+v", st)
	}
	var nilBus *Bus
	if nilBus.Active() {
		t.Fatal("nil bus must report inactive")
	}
}

// TestSubscribeWithBacklog pins the no-gap-no-duplicate contract: history
// from the recorder, then live events, with contiguous sequence numbers.
func TestSubscribeWithBacklog(t *testing.T) {
	b := New(Config{Epoch: testEpoch})
	publishN(b, StreamEngine, 10)
	sub := b.SubscribeWithBacklog(1, StreamEngine) // buffer grows to fit history
	publishN(b, StreamEngine, 10)
	b.Close()

	got := drain(sub)
	if len(got) != 20 {
		t.Fatalf("got %d events, want 20 (10 backlog + 10 live)", len(got))
	}
	for i, ev := range got {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d: gap or duplicate at the backlog/live seam", i, ev.Seq)
		}
	}
	if st := sub.Stats(); st.Published != 20 || st.Delivered != 20 || st.Dropped != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCloseSemantics(t *testing.T) {
	b := New(Config{Epoch: testEpoch})
	sub := b.Subscribe(4)
	publishN(b, StreamEngine, 2)
	b.Close()
	b.Close() // idempotent

	if got := drain(sub); len(got) != 2 {
		t.Fatalf("subscriber drained %d events after close, want the 2 buffered", len(got))
	}
	seq := b.Seq()
	publishN(b, StreamEngine, 5)
	if b.Seq() != seq {
		t.Fatal("publish after Close must be discarded")
	}
	if len(b.Events()) != 2 {
		t.Fatalf("flight recorder must stay readable after Close, got %d events", len(b.Events()))
	}
	late := b.Subscribe(4)
	if _, ok := <-late.C(); ok {
		t.Fatal("Subscribe on a closed bus must return a closed subscription")
	}
	sub.Close() // closing again after bus close must not panic
}

func TestDumpRoundtripAndFingerprint(t *testing.T) {
	b := New(Config{Epoch: testEpoch})
	b.PublishAt(time.Millisecond, StreamSpans, "emit", "10.0.0.1", payload{N: 1})
	b.PublishAt(time.Second, StreamEngine, "epoch", "", map[string]int{"events": 7})
	b.PublishAt(2*time.Second, StreamHealth, "warn", "n1/aodv", nil)

	var buf bytes.Buffer
	if err := b.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, b.Events()) {
		t.Fatalf("roundtrip diverged:\n dump %+v\n read %+v", b.Events(), back)
	}
	if got, want := FingerprintEvents(back), b.Fingerprint(); got != want {
		t.Fatalf("fingerprint of re-read dump %s != bus fingerprint %s", got, want)
	}

	// A different event order must fingerprint differently.
	rev := append([]Event(nil), back...)
	rev[0], rev[1] = rev[1], rev[0]
	if FingerprintEvents(rev) == b.Fingerprint() {
		t.Fatal("fingerprint insensitive to event order")
	}
}

// TestConcurrentPublishSubscribeClose exercises the lock discipline under
// the race detector: publishers, churning subscribers and a bus close must
// never panic (send on closed channel) and accounting must stay exact.
func TestConcurrentPublishSubscribeClose(t *testing.T) {
	b := New(Config{Epoch: testEpoch, RecorderCapacity: 128})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.PublishAt(time.Duration(i), StreamEngine, "k", "", payload{N: p})
			}
		}(p)
	}
	var subs []*Subscription
	var smu sync.Mutex
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := b.Subscribe(8, StreamEngine)
				for j := 0; j < 4; j++ {
					select {
					case <-s.C():
					default:
					}
				}
				if i%2 == 0 {
					s.Close()
				}
				smu.Lock()
				subs = append(subs, s)
				smu.Unlock()
			}
		}()
	}
	wg.Wait()
	b.Close()
	for _, s := range subs {
		for range s.C() {
		}
		if st := s.Stats(); st.Published != st.Delivered+st.Dropped {
			t.Fatalf("accounting broken under concurrency: %+v", st)
		}
	}
}
