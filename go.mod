module manetkit

go 1.22
