// Package manetkit is the public API of this MANETKit reproduction: a
// runtime component framework for the construction, dynamic deployment and
// runtime reconfiguration of mobile ad-hoc network (MANET) routing
// protocols, after Ramdhany, Grace, Coulson & Hutchison, "MANETKit:
// Supporting the Dynamic Deployment and Reconfiguration of Ad-Hoc Routing
// Protocols" (Middleware 2009).
//
// A deployment is a Stack: one node's Framework Manager plus its System CF
// grounded in an emulated 802.11 medium (Network). Protocols — OLSR over
// multipoint relaying, reactive DYMO, or custom compositions built from
// core.Protocol — are deployed into the stack serially or simultaneously;
// their <required-events, provided-events> tuples wire them together
// automatically, and fine-grained variants (fisheye, power-aware routing,
// multipath DYMO, MPR-optimised flooding) are applied by runtime
// reconfiguration.
//
//	clk := manetkit.NewVirtualClock(time.Now())
//	net := manetkit.NewNetwork(clk, 1)
//	stacks, _ := manetkit.NewStacks(net, manetkit.Addrs(5), manetkit.StackOptions{})
//	manetkit.BuildLine(net, manetkit.Addrs(5), manetkit.DefaultQuality())
//	for _, s := range stacks { s.DeployDYMO(manetkit.DYMOConfig{}) }
//	stacks[0].SendData(stacks[4].Addr(), []byte("hello multi-hop world"))
//	clk.Advance(time.Second)
package manetkit

import (
	"fmt"
	"time"

	"manetkit/internal/aodv"
	"manetkit/internal/coord"
	"manetkit/internal/core"
	"manetkit/internal/dymo"
	"manetkit/internal/emunet"
	"manetkit/internal/event"
	"manetkit/internal/inspect"
	"manetkit/internal/invariant"
	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/mpr"
	"manetkit/internal/neighbor"
	"manetkit/internal/olsr"
	"manetkit/internal/policy"
	"manetkit/internal/route"
	"manetkit/internal/system"
	"manetkit/internal/telemetry"
	"manetkit/internal/trace"
	"manetkit/internal/vclock"
	"manetkit/internal/zrp"
)

// Re-exported core types. The aliases make the internal packages' rich
// APIs available through the public module path.
type (
	// Addr is a 4-byte node address.
	Addr = mnet.Addr
	// Prefix is an address prefix (CIDR-style).
	Prefix = mnet.Prefix
	// Clock abstracts time (real or virtual).
	Clock = vclock.Clock
	// VirtualClock is the deterministic simulation clock.
	VirtualClock = vclock.Virtual
	// Network is the emulated wireless medium.
	Network = emunet.Network
	// Quality describes one emulated link.
	Quality = emunet.Quality
	// Scenario is a scripted mobility trace.
	Scenario = emunet.Scenario
	// Manager is the Framework Manager / MANETKit CF.
	Manager = core.Manager
	// Protocol is the generic ManetProtocol CF.
	Protocol = core.Protocol
	// Event is the unit of communication between CFS units.
	Event = event.Event
	// EventType names an event kind.
	EventType = event.Type
	// Tuple is the <required-events, provided-events> declaration.
	Tuple = event.Tuple
	// Model selects the concurrency model.
	Model = core.Model
	// OLSR is the proactive protocol composition.
	OLSR = olsr.OLSR
	// DYMO is the reactive protocol composition.
	DYMO = dymo.DYMO
	// MPR is the multipoint-relay CF.
	MPR = mpr.MPR
	// NeighborDetector is the Neighbour Detection CF.
	NeighborDetector = neighbor.Detector
	// System is the System CF.
	System = system.System
	// Battery models a node power source.
	Battery = system.Battery
	// AODV is the on-demand distance-vector protocol composition.
	AODV = aodv.AODV
	// ZRP is the zone-routing hybrid composition.
	ZRP = zrp.ZRP
	// PolicyEngine is the ECA decision-making layer (§4.5).
	PolicyEngine = policy.Engine
	// PolicyRule is one event-condition-action rule.
	PolicyRule = policy.Rule
	// PolicyMetrics are the rolling aggregates rules condition on.
	PolicyMetrics = policy.Metrics
	// FaultPlan is a seeded, scripted fault schedule for the emulated
	// medium: partitions, crashes, corruption, duplication, reordering.
	FaultPlan = emunet.FaultPlan
	// Injector applies a FaultPlan; it exposes the deterministic fault log.
	Injector = emunet.Injector
	// Violation is one protocol-invariant breach.
	Violation = invariant.Violation
	// InvariantSuite is a pluggable set of snapshot invariant checkers.
	InvariantSuite = invariant.Suite
	// SeqWatcher is the live monotonic-sequence-number invariant.
	SeqWatcher = invariant.SeqWatcher
	// MetricsRegistry is the hot-path counter/gauge/histogram registry;
	// a nil registry is a valid no-op (zero-overhead disabled path).
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of every instrument.
	MetricsSnapshot = metrics.Snapshot
	// Tracer is the per-cluster structured-event ring buffer.
	Tracer = trace.Tracer
	// Span is one traced event (emit, dispatch, handle, frame-tx, ...).
	Span = trace.Span
	// RouteTable is the protocol-facing RIB template.
	RouteTable = route.Table
	// ArchSnapshot is a point-in-time serialization of the live
	// architecture meta-model: nodes × units × tuples × derived bindings.
	ArchSnapshot = inspect.Snapshot
	// NodeArch is one node's slice of an ArchSnapshot.
	NodeArch = inspect.NodeSnapshot
	// ArchDelta names the structural differences of one node between two
	// snapshots.
	ArchDelta = inspect.Delta
	// RewireJournal records every topology re-derivation as a timestamped
	// snapshot diff.
	RewireJournal = inspect.Journal
	// JournalEntry is one journalled reconfiguration.
	JournalEntry = inspect.Entry
	// PacketPath is the cross-node causal reconstruction of one correlated
	// message (flood tree or unicast chain with per-hop latency).
	PacketPath = inspect.Path
	// PacketHop is one link traversal of a PacketPath.
	PacketHop = inspect.Hop
	// HealthMonitor rolls per-unit watchdogs into a health report.
	HealthMonitor = inspect.Monitor
	// HealthTarget is one node under health watch.
	HealthTarget = inspect.Target
	// HealthReport is the outcome of one HealthMonitor check.
	HealthReport = inspect.Report
	// HealthFinding is one watchdog observation.
	HealthFinding = inspect.Finding
	// TelemetryBus multiplexes spans, health transitions, journal entries,
	// metrics deltas and engine epochs into one ordered, subscribable
	// stream with a bounded flight recorder. Slow subscribers drop (and
	// count) events; they never stall the run.
	TelemetryBus = telemetry.Bus
	// TelemetryEvent is one bus event: sequence, virtual time, stream
	// name, pre-encoded JSON payload.
	TelemetryEvent = telemetry.Event
	// TelemetrySubscription is one consumer's bounded channel plus its
	// exact published/delivered/dropped accounting.
	TelemetrySubscription = telemetry.Subscription
)

// NewFaultPlan starts an empty seeded fault schedule.
func NewFaultPlan(seed int64) *FaultPlan { return emunet.NewFaultPlan(seed) }

// NewSeqWatcher builds the live sequence-number checker; install it with
// Network.SetTap(w.Observe).
func NewSeqWatcher() *SeqWatcher { return invariant.NewSeqWatcher() }

// DefaultInvariants returns the standard protocol invariants: no routing
// loops, route liveness, neighbour-table symmetry.
func DefaultInvariants() *InvariantSuite { return invariant.DefaultSuite() }

// NewMetricsRegistry builds an instrument registry; share one per cluster
// and pass it via StackOptions.Metrics and Network.SetMetrics.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewTracer builds a structured-event tracer with a bounded ring buffer
// (capacity 0 = default). Epoch anchors relative timestamps; use the
// virtual clock's start time for deterministic traces.
func NewTracer(epoch time.Time, capacity int) *Tracer { return trace.New(epoch, capacity) }

// CaptureArch snapshots the live architecture meta-model of the given
// stacks; the result serializes deterministically to JSON and Graphviz DOT.
func CaptureArch(stacks ...*Stack) ArchSnapshot {
	mgrs := make([]*core.Manager, len(stacks))
	for i, s := range stacks {
		mgrs[i] = s.mgr
	}
	return inspect.Capture(mgrs...)
}

// DiffArch computes per-node structural deltas between two snapshots.
func DiffArch(a, b ArchSnapshot) []ArchDelta { return inspect.Diff(a, b) }

// ParseArchSnapshot inverts ArchSnapshot.JSON.
func ParseArchSnapshot(data []byte) (ArchSnapshot, error) { return inspect.ParseSnapshot(data) }

// NewRewireJournal creates a journal of topology re-derivations; install it
// via StackOptions.Journal (or Journal.Watch on individual managers).
func NewRewireJournal(epoch time.Time) *RewireJournal { return inspect.NewJournal(epoch) }

// CorrelatePaths stitches a cluster trace into per-message causal paths.
func CorrelatePaths(spans []Span) []PacketPath { return inspect.Correlate(spans) }

// RenderPacketPaths renders up to limit reconstructed paths as propagation
// trees (limit <= 0 renders all).
func RenderPacketPaths(paths []PacketPath, limit int) string {
	return inspect.RenderPaths(paths, limit)
}

// NewHealthMonitor builds a watchdog monitor over the shared registry
// (reg may be nil); zero-valued config fields take defaults.
func NewHealthMonitor(epoch time.Time, reg *MetricsRegistry, cfg inspect.MonitorConfig) *HealthMonitor {
	return inspect.NewMonitor(epoch, reg, cfg)
}

// HealthConfig tunes the HealthMonitor thresholds.
type HealthConfig = inspect.MonitorConfig

// NewTelemetryBus builds a streaming telemetry bus anchored at epoch with
// the default flight-recorder capacity. Wire producers with
// telemetry.AttachTracer / AttachJournal / AttachHealth / AttachEngine,
// or pass the bus to harness.ChaosConfig.Telemetry.
func NewTelemetryBus(epoch time.Time) *TelemetryBus {
	return telemetry.New(telemetry.Config{Epoch: epoch})
}

// Concurrency models (§4.4 of the paper).
const (
	SingleThreaded = core.SingleThreaded
	PerMessage     = core.PerMessage
	PerN           = core.PerN
)

// Broadcast is the link-local broadcast address.
var Broadcast = mnet.Broadcast

// ParseAddr parses a dotted-quad node address.
func ParseAddr(s string) (Addr, error) { return mnet.ParseAddr(s) }

// MustParseAddr parses a dotted-quad address, panicking on error.
func MustParseAddr(s string) Addr { return mnet.MustParseAddr(s) }

// Addrs returns n sequential addresses starting at 10.0.0.1.
func Addrs(n int) []Addr { return emunet.Addrs(n) }

// NewVirtualClock returns a deterministic clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock { return vclock.NewVirtual(start) }

// NewBattery models a node power source for the POWER_STATUS sensor:
// initial fraction, idle drain per second, drain per transmitted frame.
func NewBattery(initial, perSecond, perFrame float64, start time.Time) *Battery {
	return system.NewBattery(initial, perSecond, perFrame, start)
}

// RealClock returns the wall clock.
func RealClock() Clock { return vclock.Real() }

// NewNetwork creates an emulated medium on the given clock; seed drives
// the loss process.
func NewNetwork(clock Clock, seed int64) *Network { return emunet.New(clock, seed) }

// DefaultQuality approximates a healthy one-hop 802.11b/g link.
func DefaultQuality() Quality { return emunet.DefaultQuality() }

// Topology helpers.
func BuildLine(n *Network, addrs []Addr, q Quality) error { return emunet.BuildLine(n, addrs, q) }
func BuildGrid(n *Network, addrs []Addr, cols int, q Quality) error {
	return emunet.BuildGrid(n, addrs, cols, q)
}
func BuildClique(n *Network, addrs []Addr, q Quality) error { return emunet.BuildClique(n, addrs, q) }

// StackOptions tunes a node deployment.
type StackOptions struct {
	// Model is the concurrency model (default SingleThreaded).
	Model Model
	// Battery, when non-nil, powers the POWER_STATUS context sensor.
	Battery *Battery
	// SensorInterval is the context sensor period (default 1s).
	SensorInterval time.Duration
	// Metrics, when non-nil, receives the node's hot-path counters; share
	// one registry across a cluster (and Network.SetMetrics) for a global
	// view. Nil disables metrics at zero cost.
	Metrics *MetricsRegistry
	// Tracer, when non-nil, records structured spans from the node's
	// dispatch path. Nil disables tracing at zero cost.
	Tracer *Tracer
	// Journal, when non-nil, records every topology re-derivation of the
	// stack (deploys, undeploys, model switches, retuples) as a timestamped
	// snapshot diff; share one journal across a cluster.
	Journal *RewireJournal
}

// OLSRConfig parameterises an OLSR deployment.
type OLSRConfig struct {
	HelloInterval time.Duration // default 2s
	TCInterval    time.Duration // default 5s
}

// DYMOConfig parameterises a DYMO deployment.
type DYMOConfig struct {
	HelloInterval time.Duration // neighbour sensing beacons, default 2s
	RouteLifetime time.Duration // default 5s
	HopLimit      uint8         // control-message propagation cap, default 10
}

// Stack is one node's MANETKit deployment: Framework Manager + System CF,
// into which routing protocols are deployed and reconfigured at runtime.
type Stack struct {
	mgr *core.Manager
	sys *system.System
	net *emunet.Network

	olsr    *olsr.OLSR
	mpr     *mpr.MPR
	dymo    *dymo.DYMO
	aodv    *aodv.AODV
	zrp     *zrp.ZRP
	nd      *neighbor.Detector
	fisheye *core.Protocol
	policy  *policy.Engine
}

// NewStack attaches a node at addr to the network and boots its framework
// and System CF.
func NewStack(net *Network, addr Addr, opts StackOptions) (*Stack, error) {
	if opts.Model == 0 {
		opts.Model = SingleThreaded
	}
	nic, err := net.Attach(addr)
	if err != nil {
		return nil, fmt.Errorf("manetkit: %w", err)
	}
	mgr, err := core.NewManager(core.Config{
		Node: addr, Clock: net.Clock(), Model: opts.Model,
		Metrics: opts.Metrics, Tracer: opts.Tracer,
	})
	if err != nil {
		return nil, fmt.Errorf("manetkit: %w", err)
	}
	sys, err := system.New(system.Config{
		NIC:            nic,
		Battery:        opts.Battery,
		SensorInterval: opts.SensorInterval,
	})
	if err != nil {
		return nil, fmt.Errorf("manetkit: %w", err)
	}
	if err := mgr.Deploy(sys.Protocol()); err != nil {
		return nil, fmt.Errorf("manetkit: %w", err)
	}
	if err := sys.Protocol().Start(); err != nil {
		return nil, fmt.Errorf("manetkit: %w", err)
	}
	if opts.Journal != nil {
		opts.Journal.Watch(mgr)
	}
	return &Stack{mgr: mgr, sys: sys, net: net}, nil
}

// NewStacks builds one stack per address.
func NewStacks(net *Network, addrs []Addr, opts StackOptions) ([]*Stack, error) {
	stacks := make([]*Stack, 0, len(addrs))
	for _, a := range addrs {
		s, err := NewStack(net, a, opts)
		if err != nil {
			for _, built := range stacks {
				built.Close()
			}
			return nil, err
		}
		stacks = append(stacks, s)
	}
	return stacks, nil
}

// Addr returns the node address.
func (s *Stack) Addr() Addr { return s.mgr.Node() }

// Manager exposes the Framework Manager (deployment, rewiring, context
// concentrator, architecture meta-model).
func (s *Stack) Manager() *Manager { return s.mgr }

// System exposes the System CF.
func (s *Stack) System() *System { return s.sys }

// Deploy installs a custom protocol unit and starts it.
func (s *Stack) Deploy(p *Protocol) error {
	if err := s.mgr.Deploy(p); err != nil {
		return err
	}
	return p.Start()
}

// Undeploy stops and removes a protocol unit by name.
func (s *Stack) Undeploy(name string) error { return s.mgr.Undeploy(name) }

// RouteTables returns the RIBs of the stack's deployed routing protocols,
// keyed by unit name — the route-staleness targets for a HealthMonitor.
func (s *Stack) RouteTables() map[string]*RouteTable {
	out := map[string]*RouteTable{}
	if s.olsr != nil {
		out[olsr.UnitName] = s.olsr.Routes()
	}
	if s.dymo != nil {
		out[dymo.UnitName] = s.dymo.Routes()
	}
	if s.aodv != nil {
		out[aodv.UnitName] = s.aodv.Routes()
	}
	if s.zrp != nil {
		out[zrp.UnitName] = s.zrp.Routes()
	}
	return out
}

// DeployOLSR installs the proactive composition (MPR CF + OLSR CF). The
// deployment is idempotent per stack.
func (s *Stack) DeployOLSR(cfg OLSRConfig) (*OLSR, error) {
	if s.olsr != nil {
		return s.olsr, nil
	}
	relay := s.mpr
	if relay == nil {
		relay = mpr.New("", mpr.Config{HelloInterval: cfg.HelloInterval})
		if err := s.mgr.Deploy(relay.Protocol()); err != nil {
			return nil, err
		}
		if err := relay.Protocol().Start(); err != nil {
			return nil, err
		}
		s.mpr = relay
	}
	o := olsr.New("", relay, olsr.Config{
		TCInterval: cfg.TCInterval,
		Clock:      s.net.Clock(),
		FIB:        s.sys.FIB(),
		Device:     s.sys.NIC().Device(),
	})
	if err := s.mgr.Deploy(o.Protocol()); err != nil {
		return nil, err
	}
	if err := o.Protocol().Start(); err != nil {
		return nil, err
	}
	s.olsr = o
	return o, nil
}

// UndeployOLSR removes the OLSR CF (the MPR CF stays, in case another
// protocol shares it; remove it with UndeployMPR).
func (s *Stack) UndeployOLSR() error {
	if s.olsr == nil {
		return nil
	}
	if err := s.mgr.Undeploy(s.olsr.Protocol().Name()); err != nil {
		return err
	}
	s.sys.FIB().FlushProto(s.olsr.Protocol().Name())
	s.olsr = nil
	return nil
}

// UndeployMPR removes the MPR CF (only valid once nothing stacks on it).
func (s *Stack) UndeployMPR() error {
	if s.mpr == nil {
		return nil
	}
	if s.olsr != nil {
		return fmt.Errorf("manetkit: OLSR still stacked on MPR")
	}
	if err := s.mgr.Undeploy(s.mpr.Protocol().Name()); err != nil {
		return err
	}
	s.mpr = nil
	return nil
}

// MPRUnit returns the deployed MPR CF, if any.
func (s *Stack) MPRUnit() *MPR { return s.mpr }

// DeployDYMO installs the reactive composition (Neighbour Detection CF +
// DYMO CF). If an MPR CF is already deployed (e.g. OLSR is co-deployed),
// DYMO shares it for optimised flooding instead of a private detector —
// the paper's leaner co-deployment (§5.2).
func (s *Stack) DeployDYMO(cfg DYMOConfig) (*DYMO, error) {
	if s.dymo != nil {
		return s.dymo, nil
	}
	d := dymo.New("", dymo.Config{
		RouteLifetime: cfg.RouteLifetime,
		HopLimit:      cfg.HopLimit,
		Clock:         s.net.Clock(),
		FIB:           s.sys.FIB(),
		Device:        s.sys.NIC().Device(),
	})
	if s.mpr != nil {
		d.SetFlooder(s.mpr.Flooder())
	} else if s.nd == nil {
		nd := neighbor.New("", neighbor.Config{
			HelloInterval:     cfg.HelloInterval,
			LinkLayerFeedback: true,
		})
		if err := s.mgr.Deploy(nd.Protocol()); err != nil {
			return nil, err
		}
		if err := nd.Protocol().Start(); err != nil {
			return nil, err
		}
		s.nd = nd
	}
	if err := s.mgr.Deploy(d.Protocol()); err != nil {
		return nil, err
	}
	if err := d.Protocol().Start(); err != nil {
		return nil, err
	}
	s.dymo = d
	return d, nil
}

// UndeployDYMO removes the DYMO CF and its private Neighbour Detection CF.
func (s *Stack) UndeployDYMO() error {
	if s.dymo == nil {
		return nil
	}
	if err := s.mgr.Undeploy(s.dymo.Protocol().Name()); err != nil {
		return err
	}
	s.sys.FIB().FlushProto(s.dymo.Protocol().Name())
	s.dymo = nil
	if s.nd != nil {
		if err := s.mgr.Undeploy(s.nd.Protocol().Name()); err != nil {
			return err
		}
		s.nd = nil
	}
	return nil
}

// AODVConfig parameterises an AODV deployment.
type AODVConfig struct {
	HelloInterval   time.Duration // neighbour sensing beacons, default 2s
	RouteLifetime   time.Duration // default 5s
	PiggybackRoutes bool          // share routes on HELLO beacons (§4.3)
}

// DeployAODV installs the on-demand composition (Neighbour Detection CF +
// AODV CF). AODV and DYMO are alternatives; install the single-reactive
// integrity rule (RestrictToOneReactive) to have the framework police it.
func (s *Stack) DeployAODV(cfg AODVConfig) (*AODV, error) {
	if s.aodv != nil {
		return s.aodv, nil
	}
	if s.nd == nil {
		nd := neighbor.New("", neighbor.Config{
			HelloInterval:     cfg.HelloInterval,
			LinkLayerFeedback: true,
		})
		if err := s.mgr.Deploy(nd.Protocol()); err != nil {
			return nil, err
		}
		if err := nd.Protocol().Start(); err != nil {
			return nil, err
		}
		s.nd = nd
	}
	a := aodv.New("", s.nd, aodv.Config{
		RouteLifetime:   cfg.RouteLifetime,
		PiggybackRoutes: cfg.PiggybackRoutes,
		Clock:           s.net.Clock(),
		FIB:             s.sys.FIB(),
		Device:          s.sys.NIC().Device(),
	})
	if err := s.mgr.Deploy(a.Protocol()); err != nil {
		return nil, err
	}
	if err := a.Protocol().Start(); err != nil {
		return nil, err
	}
	s.aodv = a
	return a, nil
}

// UndeployAODV removes the AODV CF (the Neighbour Detection CF stays for
// other users; it goes with UndeployDYMO-style cleanup on Close).
func (s *Stack) UndeployAODV() error {
	if s.aodv == nil {
		return nil
	}
	if err := s.mgr.Undeploy(s.aodv.Protocol().Name()); err != nil {
		return err
	}
	s.sys.FIB().FlushProto(s.aodv.Protocol().Name())
	s.aodv = nil
	return nil
}

// AODVUnit returns the deployed AODV CF, if any.
func (s *Stack) AODVUnit() *AODV { return s.aodv }

// ZRPConfig parameterises a ZRP deployment.
type ZRPConfig struct {
	HelloInterval time.Duration // zone sensing beacons, default 2s
	RouteLifetime time.Duration // interzone route validity, default 5s
}

// DeployZRP installs the hybrid zone-routing composition (MPR CF + ZRP
// CF): proactive routing within the radius-2 zone, reactive discovery
// beyond it, with in-zone nodes answering on out-of-zone targets' behalf.
func (s *Stack) DeployZRP(cfg ZRPConfig) (*ZRP, error) {
	if s.zrp != nil {
		return s.zrp, nil
	}
	relay := s.mpr
	if relay == nil {
		relay = mpr.New("", mpr.Config{HelloInterval: cfg.HelloInterval})
		if err := s.mgr.Deploy(relay.Protocol()); err != nil {
			return nil, err
		}
		if err := relay.Protocol().Start(); err != nil {
			return nil, err
		}
		s.mpr = relay
	}
	z := zrp.New("", relay, zrp.Config{
		RouteLifetime: cfg.RouteLifetime,
		Clock:         s.net.Clock(),
		FIB:           s.sys.FIB(),
		Device:        s.sys.NIC().Device(),
	})
	if err := s.mgr.Deploy(z.Protocol()); err != nil {
		return nil, err
	}
	if err := z.Protocol().Start(); err != nil {
		return nil, err
	}
	s.zrp = z
	return z, nil
}

// UndeployZRP removes the ZRP CF (the shared MPR CF stays).
func (s *Stack) UndeployZRP() error {
	if s.zrp == nil {
		return nil
	}
	if err := s.mgr.Undeploy(s.zrp.Protocol().Name()); err != nil {
		return err
	}
	s.sys.FIB().FlushProto(s.zrp.Protocol().Name())
	s.zrp = nil
	return nil
}

// ZRPUnit returns the deployed ZRP CF, if any.
func (s *Stack) ZRPUnit() *ZRP { return s.zrp }

// RestrictToOneReactive installs the paper's example integrity rule: at
// most one reactive routing protocol (AODV or DYMO) in this deployment
// (§4.2).
func (s *Stack) RestrictToOneReactive() error {
	return s.mgr.AddRule(aodv.RuleSingleReactive(aodv.UnitName, dymo.UnitName))
}

// Policy returns the stack's ECA decision-making engine, creating it on
// first use (§4.5: context monitoring + enactment from MANETKit, decisions
// from above).
func (s *Stack) Policy() *PolicyEngine {
	if s.policy == nil {
		s.policy = policy.New(s.mgr)
	}
	return s.policy
}

// OLSRUnit returns the deployed OLSR CF, if any.
func (s *Stack) OLSRUnit() *OLSR { return s.olsr }

// DYMOUnit returns the deployed DYMO CF, if any.
func (s *Stack) DYMOUnit() *DYMO { return s.dymo }

// EnableFisheye deploys the fisheye interposer into the TC_OUT path
// (OLSR's scalability variant). Pass nil for the default TTL pattern.
func (s *Stack) EnableFisheye(pattern []uint8) error {
	if s.fisheye != nil {
		return nil
	}
	fish := olsr.NewFisheye("", pattern)
	if err := s.mgr.Deploy(fish); err != nil {
		return err
	}
	if err := fish.Start(); err != nil {
		return err
	}
	s.fisheye = fish
	return nil
}

// DisableFisheye removes the interposer; the TC_OUT path heals
// automatically.
func (s *Stack) DisableFisheye() error {
	if s.fisheye == nil {
		return nil
	}
	if err := s.mgr.Undeploy(s.fisheye.Name()); err != nil {
		return err
	}
	s.fisheye = nil
	return nil
}

// SendData originates an application data packet; a reactive protocol
// (DYMO) discovers the route on demand, a proactive one (OLSR) should
// already have installed it.
func (s *Stack) SendData(dst Addr, payload []byte) error {
	return s.sys.Filter().SendData(dst, payload)
}

// OnDeliver installs the upcall for data packets addressed to this node.
func (s *Stack) OnDeliver(fn func(src Addr, payload []byte)) {
	s.sys.Filter().OnDeliver(fn)
}

// SubscribeContext taps the Framework Manager's context concentrator.
func (s *Stack) SubscribeContext(pattern EventType, fn func(*Event)) {
	s.mgr.SubscribeContext(pattern, fn)
}

// Sniff deploys a passive diagnostic unit that observes every event
// flowing through this stack (the framework-level packet capture). It
// returns the unit so it can be undeployed by name.
func (s *Stack) Sniff(name string, fn func(*Event)) (*Protocol, error) {
	sniffer, err := core.NewSniffer(name, fn)
	if err != nil {
		return nil, err
	}
	if err := s.mgr.Deploy(sniffer); err != nil {
		return nil, err
	}
	return sniffer, nil
}

// CoordinatedAction is a reconfiguration applied across several stacks
// with two-phase semantics (see Coordinate).
type CoordinatedAction struct {
	// Name identifies the action in errors.
	Name string
	// Prepare (optional) checks feasibility on one stack; any veto aborts
	// the whole action before anything changes.
	Prepare func(s *Stack) error
	// Apply enacts the reconfiguration on one stack.
	Apply func(s *Stack) error
	// Undo (optional) reverts Apply during rollback.
	Undo func(s *Stack) error
}

// Coordinate runs a distributed reconfiguration across the stacks: all
// prepares first (any veto aborts), then applies in order with reverse
// rollback on failure — the paper's §7 "coordinated distributed dynamic
// reconfiguration".
func Coordinate(stacks []*Stack, act CoordinatedAction) error {
	members := make([]*coord.Member, len(stacks))
	byName := make(map[string]*Stack, len(stacks))
	for i, s := range stacks {
		name := s.Addr().String()
		members[i] = &coord.Member{Name: name, Mgr: s.Manager()}
		byName[name] = s
	}
	inner := coord.Action{Name: act.Name}
	if act.Prepare != nil {
		inner.Prepare = func(m *coord.Member) error { return act.Prepare(byName[m.Name]) }
	}
	inner.Apply = func(m *coord.Member) error { return act.Apply(byName[m.Name]) }
	if act.Undo != nil {
		inner.Undo = func(m *coord.Member) error { return act.Undo(byName[m.Name]) }
	}
	_, err := coord.Run(members, inner)
	return err
}

// Close shuts the node down.
func (s *Stack) Close() { s.mgr.Close() }
