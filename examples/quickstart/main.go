// Quickstart: build a five-node emulated MANET in a line (the paper's
// testbed topology), deploy the reactive DYMO composition on every node,
// and send data end-to-end — the route is discovered on demand, buffered
// packets are re-injected on ROUTE_FOUND, and the multi-hop path shows up
// in every node's simulated kernel FIB.
package main

import (
	"fmt"
	"log"
	"time"

	"manetkit"
)

func main() {
	const nodes = 5

	// A deterministic virtual clock makes the whole run reproducible; swap
	// in manetkit.RealClock() to run in wall time.
	clk := manetkit.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := manetkit.NewNetwork(clk, 1)
	addrs := manetkit.Addrs(nodes)

	stacks, err := manetkit.NewStacks(net, addrs, manetkit.StackOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, s := range stacks {
			s.Close()
		}
	}()
	if err := manetkit.BuildLine(net, addrs, manetkit.DefaultQuality()); err != nil {
		log.Fatal(err)
	}

	// Deploy DYMO (with its Neighbour Detection CF) on every node.
	for _, s := range stacks {
		if _, err := s.DeployDYMO(manetkit.DYMOConfig{}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("deployed DYMO on", nodes, "nodes: 10.0.0.1 - 10.0.0.2 - ... -", addrs[nodes-1])

	// Receive upcall at the far end.
	stacks[nodes-1].OnDeliver(func(src manetkit.Addr, payload []byte) {
		fmt.Printf("node %v received %q from %v (4 hops away)\n",
			addrs[nodes-1], payload, src)
	})

	// Let neighbour sensing settle, then send: no route exists, so the
	// packet filter buffers the packet and DYMO floods a route request.
	clk.Advance(3 * time.Second)
	start := clk.Now()
	if err := stacks[0].SendData(addrs[nodes-1], []byte("hello multi-hop world")); err != nil {
		log.Fatal(err)
	}
	clk.Advance(time.Second)

	d := stacks[0].DYMOUnit()
	if _, path, err := d.Routes().Lookup(addrs[nodes-1]); err == nil {
		fmt.Printf("route discovered: %v via %v, %d hops\n", addrs[nodes-1], path.NextHop, path.Metric)
	}
	fmt.Printf("discovery + delivery completed within %v of simulated time\n",
		clk.Now().Sub(start))

	fmt.Println("\nkernel FIB on the first node:")
	for _, r := range stacks[0].System().FIB().List() {
		fmt.Printf("  %v via %v metric %d (%s)\n", r.Dst, r.NextHop, r.Metric, r.Proto)
	}
}
