// Adaptive: the complete closed-loop reconfigurable system the paper
// sketches in §4.5 — MANETKit supplies context monitoring (the concentrator)
// and reconfiguration enactment; an ECA policy engine supplies the decision
// making. Two rules run live:
//
//   - low battery  -> enable power-aware OLSR (relay selection spares the
//     draining node);
//   - battery critical -> enable fisheye (cut long-range TC overhead).
//
// The node's battery drains in simulation; the rules fire on the
// POWER_STATUS context events, and the reconfigurations land without any
// protocol restart.
package main

import (
	"fmt"
	"log"
	"time"

	"manetkit"
)

func main() {
	clk := manetkit.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := manetkit.NewNetwork(clk, 1)
	addrs := manetkit.Addrs(4)

	// Node 1 runs on a draining battery: 2%/s idle drain.
	var stacks []*manetkit.Stack
	for i, a := range addrs {
		opts := manetkit.StackOptions{}
		if i == 0 {
			opts.Battery = manetkit.NewBattery(1.0, 0.02, 0, clk.Now())
		}
		s, err := manetkit.NewStack(net, a, opts)
		if err != nil {
			log.Fatal(err)
		}
		stacks = append(stacks, s)
	}
	defer func() {
		for _, s := range stacks {
			s.Close()
		}
	}()
	if err := manetkit.BuildLine(net, addrs, manetkit.DefaultQuality()); err != nil {
		log.Fatal(err)
	}
	for _, s := range stacks {
		if _, err := s.DeployOLSR(manetkit.OLSRConfig{}); err != nil {
			log.Fatal(err)
		}
	}

	// The decision-making layer on the draining node.
	s0 := stacks[0]
	eng := s0.Policy()
	if err := eng.AddRule(manetkit.PolicyRule{
		Name: "low-battery->power-aware",
		When: "POWER_STATUS",
		Condition: func(ev *manetkit.Event, m manetkit.PolicyMetrics) bool {
			return m.BatteryFraction < 0.6
		},
		Action: func() error {
			fmt.Printf("[%v] rule fired: enabling power-aware OLSR (battery low)\n",
				clk.Now().Sub(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)))
			return s0.OLSRUnit().EnablePowerAware()
		},
		Once: true,
	}); err != nil {
		log.Fatal(err)
	}
	if err := eng.AddRule(manetkit.PolicyRule{
		Name: "critical-battery->fisheye",
		When: "POWER_STATUS",
		Condition: func(ev *manetkit.Event, m manetkit.PolicyMetrics) bool {
			return m.BatteryFraction < 0.3
		},
		Action: func() error {
			fmt.Printf("[%v] rule fired: enabling fisheye (battery critical)\n",
				clk.Now().Sub(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)))
			return s0.EnableFisheye(nil)
		},
		Once: true,
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("running: node 1's battery drains at 2%/s; policy watches POWER_STATUS")
	for i := 0; i < 8; i++ {
		clk.Advance(5 * time.Second)
		m := eng.Metrics()
		fmt.Printf("  t+%2ds battery=%3.0f%% power-aware=%v fisheye-interposed=%v\n",
			(i+1)*5, 100*m.BatteryFraction,
			s0.OLSRUnit().PowerAware(), fisheyeOn(s0))
	}

	fmt.Println("\npolicy firing log:")
	for _, f := range eng.Firings() {
		status := "ok"
		if f.Err != nil {
			status = f.Err.Error()
		}
		fmt.Printf("  %s at %v (%s)\n", f.Rule, f.At.Format("15:04:05"), status)
	}
}

func fisheyeOn(s *manetkit.Stack) bool {
	inter, _ := s.Manager().Chain("TC_OUT")
	return len(inter) > 0
}
