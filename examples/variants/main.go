// Variants: the paper's fine-grained dynamic reconfigurations (§5), all
// applied to a live network without redeploying the protocols.
//
//  1. Fisheye OLSR — a component that requires and provides TC_OUT is
//     deployed, and the Framework Manager automatically interposes it in
//     the TC_OUT path; undeploying it heals the path.
//  2. Power-aware OLSR — the MPR calculator component is swapped for the
//     battery-weighing version, and a ResidualPower handler is plugged in.
//  3. Multipath DYMO — the RE and RERR handler components are replaced
//     under quiescence; a single discovery then yields link-disjoint
//     paths, and a link break fails over with no new discovery.
package main

import (
	"fmt"
	"log"
	"time"

	"manetkit"
)

func main() {
	clk := manetkit.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := manetkit.NewNetwork(clk, 1)

	// Diamond topology: 1-2-4 and 1-3-4; an extra tail 4-5 for TC traffic.
	addrs := manetkit.Addrs(5)
	stacks, err := manetkit.NewStacks(net, addrs, manetkit.StackOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, s := range stacks {
			s.Close()
		}
	}()
	q := manetkit.DefaultQuality()
	for _, pair := range [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}, {3, 4}} {
		if err := net.SetLink(addrs[pair[0]], addrs[pair[1]], q); err != nil {
			log.Fatal(err)
		}
	}
	for _, s := range stacks {
		if _, err := s.DeployOLSR(manetkit.OLSRConfig{}); err != nil {
			log.Fatal(err)
		}
		if _, err := s.DeployDYMO(manetkit.DYMOConfig{}); err != nil {
			log.Fatal(err)
		}
	}
	clk.Advance(20 * time.Second)
	fmt.Println("baseline: OLSR+DYMO deployed on 5 nodes (diamond + tail)")

	// --- 1. Fisheye ---------------------------------------------------
	fmt.Println("\n[1] fisheye OLSR: deploy the TC_OUT interposer on node 4")
	if err := stacks[3].EnableFisheye([]uint8{1, 255}); err != nil {
		log.Fatal(err)
	}
	inter, _ := stacks[3].Manager().Chain("TC_OUT")
	fmt.Printf("    TC_OUT chain on node 4 now runs through: %v\n", inter)
	clk.Advance(20 * time.Second)
	if err := stacks[3].DisableFisheye(); err != nil {
		log.Fatal(err)
	}
	inter, _ = stacks[3].Manager().Chain("TC_OUT")
	fmt.Printf("    after removal the chain is direct again (interposers: %d)\n", len(inter))

	// --- 2. Power-aware OLSR -------------------------------------------
	fmt.Println("\n[2] power-aware OLSR: swap the MPR calculator on node 1")
	o := stacks[0].OLSRUnit()
	fmt.Printf("    calculator before: %s\n", stacks[0].MPRUnit().CalculatorName())
	if err := o.EnablePowerAware(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    calculator after:  %s (ResidualPower handler plugged, tuple requires POWER_STATUS)\n",
		stacks[0].MPRUnit().CalculatorName())
	clk.Advance(10 * time.Second)
	if err := o.DisablePowerAware(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    reverted to:       %s\n", stacks[0].MPRUnit().CalculatorName())

	// --- 3. Multipath DYMO ---------------------------------------------
	fmt.Println("\n[3] multipath DYMO: replace the RE/RERR handlers on every node")
	for _, s := range stacks {
		if err := s.DYMOUnit().EnableMultipath(2); err != nil {
			log.Fatal(err)
		}
	}
	// Let the proactive routes age out so DYMO discovers its own. (OLSR is
	// undeployed here to keep the FIB reactive-only for the demo.) The
	// shared MPR flooder is also detached: multipath mining needs the
	// duplicate RREQs that optimised flooding deliberately suppresses —
	// the two variants trade off against each other.
	for _, s := range stacks {
		if err := s.UndeployOLSR(); err != nil {
			log.Fatal(err)
		}
		s.DYMOUnit().SetFlooder(nil)
	}
	clk.Advance(20 * time.Second)

	d := stacks[0].DYMOUnit()
	if err := stacks[0].SendData(addrs[3], []byte("multipath probe")); err != nil {
		log.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if e, ok := d.Routes().Get(manetkit.Prefix{Addr: addrs[3], Bits: 32}); ok {
		fmt.Printf("    one discovery yielded %d link-disjoint paths to %v:\n", len(e.Paths), addrs[3])
		for _, p := range e.Paths {
			fmt.Printf("      via %v (%d hops)\n", p.NextHop, p.Metric)
		}
	}
	before := d.State().Stats().Discoveries
	net.CutLink(addrs[0], addrs[1])
	if err := stacks[0].SendData(addrs[3], []byte("after break")); err != nil {
		log.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if _, p, err := d.Routes().Lookup(addrs[3]); err == nil {
		fmt.Printf("    after breaking 1-2: failover to via %v, discoveries %d -> %d (no re-discovery)\n",
			p.NextHop, before, d.State().Stats().Discoveries)
	}
}
