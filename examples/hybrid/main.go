// Hybrid deployment: both protocol families run simultaneously on every
// node, sharing substrate components — the paper's simultaneous-deployment
// goal plus the "leaner deployment" of §5.2, where a co-deployed DYMO
// shares the MPR CF with OLSR instead of running its own Neighbour
// Detection CF.
//
// The proactive side serves stable, frequently used destinations (routes
// always installed); the reactive side covers everything else on demand —
// a poor man's zone routing assembled purely by composition.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"manetkit"
)

func main() {
	const nodes = 6
	clk := manetkit.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := manetkit.NewNetwork(clk, 1)
	addrs := manetkit.Addrs(nodes)

	stacks, err := manetkit.NewStacks(net, addrs, manetkit.StackOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, s := range stacks {
			s.Close()
		}
	}()
	if err := manetkit.BuildLine(net, addrs, manetkit.DefaultQuality()); err != nil {
		log.Fatal(err)
	}

	// Deploy OLSR first (bringing the MPR CF), then DYMO — which detects
	// the MPR CF and shares it: optimised RREQ flooding, no second
	// HELLO-beacon protocol.
	for _, s := range stacks {
		if _, err := s.DeployOLSR(manetkit.OLSRConfig{}); err != nil {
			log.Fatal(err)
		}
		if _, err := s.DeployDYMO(manetkit.DYMOConfig{}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("deployed OLSR+DYMO simultaneously on", nodes, "nodes")
	fmt.Println("units on node 1:", stacks[0].Manager().Units())

	clk.Advance(30 * time.Second)

	// The proactive side has already installed every route.
	fmt.Printf("OLSR routes on node 1 after convergence: %d\n",
		stacks[0].OLSRUnit().Routes().ValidCount())

	var mu sync.Mutex
	delivered := 0
	stacks[nodes-1].OnDeliver(func(src manetkit.Addr, payload []byte) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})

	// Data rides the OLSR-installed kernel routes; DYMO never needs to
	// discover because the FIB already resolves (its NO_ROUTE trigger
	// stays silent).
	for i := 0; i < 3; i++ {
		if err := stacks[0].SendData(addrs[nodes-1], []byte(fmt.Sprintf("pkt-%d", i))); err != nil {
			log.Fatal(err)
		}
		clk.Advance(100 * time.Millisecond)
	}
	mu.Lock()
	fmt.Printf("delivered %d/3 data packets over proactive routes\n", delivered)
	mu.Unlock()
	fmt.Printf("DYMO discoveries so far on node 1: %d (proactive side answered first)\n",
		stacks[0].DYMOUnit().State().Stats().Discoveries)

	// Now the proactive zone fails locally: OLSR is undeployed on the two
	// end nodes (say, to save their battery). The reactive side takes over
	// for them transparently.
	fmt.Println("undeploying OLSR on the end nodes; DYMO takes over")
	for _, i := range []int{0, nodes - 1} {
		if err := stacks[i].UndeployOLSR(); err != nil {
			log.Fatal(err)
		}
	}
	clk.Advance(20 * time.Second) // old proactive routes age out of the FIB

	if err := stacks[0].SendData(addrs[nodes-1], []byte("reactive now")); err != nil {
		log.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	mu.Lock()
	fmt.Printf("delivered %d/4 total; node 1 DYMO discoveries: %d\n",
		delivered, stacks[0].DYMOUnit().State().Stats().Discoveries)
	mu.Unlock()
}
