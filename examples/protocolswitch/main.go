// Protocol switch: the paper's headline scenario (§1): "MANET nodes can
// switch protocols to optimise to current operating conditions."
//
// A small, stable network starts with proactive OLSR (routes always ready,
// constant beacon overhead). The network then grows, and a policy — the
// higher-level decision-making the paper leaves outside MANETKit (§4.5) —
// decides the proactive overhead no longer pays and switches every node to
// reactive DYMO at runtime, serially: undeploy OLSR, deploy DYMO, traffic
// keeps flowing.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"manetkit"
)

func main() {
	clk := manetkit.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := manetkit.NewNetwork(clk, 1)

	// Start with a 4-node line running OLSR.
	initial := manetkit.Addrs(4)
	stacks, err := manetkit.NewStacks(net, initial, manetkit.StackOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := manetkit.BuildLine(net, initial, manetkit.DefaultQuality()); err != nil {
		log.Fatal(err)
	}
	for _, s := range stacks {
		if _, err := s.DeployOLSR(manetkit.OLSRConfig{}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("phase 1: 4 nodes, proactive OLSR")
	clk.Advance(30 * time.Second)
	fmt.Printf("  node 1 has %d proactive routes; control frames so far: %d\n",
		stacks[0].OLSRUnit().Routes().ValidCount(), net.Stats().TxFrames)

	var mu sync.Mutex
	delivered := 0
	deliverAt := func(s *manetkit.Stack) {
		s.OnDeliver(func(manetkit.Addr, []byte) {
			mu.Lock()
			delivered++
			mu.Unlock()
		})
	}
	deliverAt(stacks[len(stacks)-1])
	if err := stacks[0].SendData(initial[3], []byte("over olsr")); err != nil {
		log.Fatal(err)
	}
	clk.Advance(200 * time.Millisecond)
	mu.Lock()
	fmt.Printf("  data over OLSR delivered: %d/1 (no discovery needed)\n", delivered)
	mu.Unlock()

	// The network grows: eight more nodes extend the line.
	fmt.Println("phase 2: network grows to 12 nodes")
	grown := manetkit.Addrs(12)
	for _, a := range grown[4:] {
		s, err := manetkit.NewStack(net, a, manetkit.StackOptions{})
		if err != nil {
			log.Fatal(err)
		}
		stacks = append(stacks, s)
	}
	if err := manetkit.BuildLine(net, grown, manetkit.DefaultQuality()); err != nil {
		log.Fatal(err)
	}

	// Policy: beyond 8 nodes, proactive flooding costs too much here —
	// switch to reactive routing. (The paper: proactive suits smaller
	// networks, reactive larger ones, §2.)
	fmt.Println("phase 3: policy switches every node OLSR -> DYMO at runtime")
	before := net.Stats().TxFrames
	for _, s := range stacks {
		if s.OLSRUnit() != nil {
			if err := s.UndeployOLSR(); err != nil {
				log.Fatal(err)
			}
			if err := s.UndeployMPR(); err != nil {
				log.Fatal(err)
			}
		}
		// The grown line is 11 hops end to end; raise the RREQ hop limit
		// above the default 10.
		if _, err := s.DeployDYMO(manetkit.DYMOConfig{HopLimit: 16}); err != nil {
			log.Fatal(err)
		}
	}
	deliverAt(stacks[len(stacks)-1])
	clk.Advance(3 * time.Second)

	if err := stacks[0].SendData(grown[11], []byte("over dymo")); err != nil {
		log.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	mu.Lock()
	fmt.Printf("  data over DYMO delivered: %d/2 (route discovered on demand, 11 hops)\n", delivered)
	mu.Unlock()

	d := stacks[0].DYMOUnit()
	if _, p, err := d.Routes().Lookup(grown[11]); err == nil {
		fmt.Printf("  reactive route: via %v, %d hops\n", p.NextHop, p.Metric)
	}

	// Idle overhead comparison: reactive emits only HELLOs when idle.
	idleStart := net.Stats().TxFrames
	clk.Advance(30 * time.Second)
	fmt.Printf("  control frames in 30 idle seconds under DYMO: %d (switch cost was %d frames)\n",
		net.Stats().TxFrames-idleStart, idleStart-before)

	for _, s := range stacks {
		s.Close()
	}
}
