package main

import (
	"bytes"
	"strings"
	"testing"
)

// syntheticReport builds a small report with one deterministic and one
// wall-clock value.
func syntheticReport(detVal, wallVal float64) *BenchReport {
	r := &BenchReport{Schema: benchSchema}
	r.add("exp", map[string]BenchValue{
		"count":  det(detVal, "frames"),
		"timing": wall(wallVal, "ms"),
	})
	return r
}

func TestCompareTolerance(t *testing.T) {
	base := syntheticReport(100, 5)
	cases := []struct {
		name    string
		current *BenchReport
		tol     float64
		want    int
	}{
		{"identical", syntheticReport(100, 5), 0, 0},
		{"within band", syntheticReport(100.5, 5), 0.01, 0},
		{"outside band", syntheticReport(102, 5), 0.01, 1},
		{"wall drift ignored", syntheticReport(100, 500), 0.01, 0},
		{"zero tolerance exact", syntheticReport(100.0001, 5), 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Compare(base, tc.current, tc.tol)
			if len(got) != tc.want {
				t.Fatalf("Compare() = %v, want %d regressions", got, tc.want)
			}
		})
	}
}

func TestCompareMissingValue(t *testing.T) {
	base := syntheticReport(100, 5)
	current := &BenchReport{Schema: benchSchema}
	current.add("exp", map[string]BenchValue{"timing": wall(5, "ms")})
	got := Compare(base, current, 0.01)
	if len(got) != 1 || !strings.Contains(got[0], "missing") {
		t.Fatalf("Compare() = %v, want one missing-value regression", got)
	}
	// A whole experiment absent from current is a subset run, not a
	// regression.
	if got := Compare(base, &BenchReport{Schema: benchSchema}, 0.01); len(got) != 0 {
		t.Fatalf("Compare() on subset run = %v, want none", got)
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	rep := &BenchReport{Schema: benchSchema}
	if err := dymoVariants(rep); err != nil {
		t.Fatalf("dymoVariants: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	parsed, err := ReadBenchReport(&buf)
	if err != nil {
		t.Fatalf("ReadBenchReport: %v", err)
	}
	if regs := Compare(rep, parsed, 0); len(regs) != 0 {
		t.Fatalf("round trip changed values: %v", regs)
	}
	if regs := Compare(parsed, rep, 0); len(regs) != 0 {
		t.Fatalf("round trip changed values (reverse): %v", regs)
	}
}

func TestBadSchemaRejected(t *testing.T) {
	if _, err := ReadBenchReport(strings.NewReader(`{"schema": 99, "results": []}`)); err == nil {
		t.Fatal("ReadBenchReport accepted wrong schema")
	}
}

// TestAgainstCommittedBaseline re-measures the deterministic experiments
// and checks them against testdata/baseline.json — the CI benchmark
// regression gate. Short mode runs the two fastest experiment families.
func TestAgainstCommittedBaseline(t *testing.T) {
	baseline, err := loadBaseline("testdata/baseline.json")
	if err != nil {
		t.Fatalf("loadBaseline: %v", err)
	}
	current := &BenchReport{Schema: benchSchema}
	collectors := []struct {
		name string
		fn   func(*BenchReport) error
	}{
		{"dymo", dymoVariants},
		{"hybrid", hybrid},
	}
	if !testing.Short() {
		collectors = append(collectors,
			struct {
				name string
				fn   func(*BenchReport) error
			}{"variants", variants},
			struct {
				name string
				fn   func(*BenchReport) error
			}{"table1", func(r *BenchReport) error { return table1(r, 50) }},
			struct {
				name string
				fn   func(*BenchReport) error
			}{"dispatch", dispatch},
		)
	}
	for _, c := range collectors {
		if err := c.fn(current); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
	if regs := Compare(baseline, current, 0.01); len(regs) != 0 {
		for _, r := range regs {
			t.Errorf("REGRESSION: %s", r)
		}
	}
}
