package main

// Machine-readable benchmark output (-json) and the regression checker
// that CI runs against the committed baseline. Every measurement becomes a
// named BenchValue; values marked Deterministic are pure functions of the
// virtual clock and seed (counts, virtual-time delays, reductions) and
// must reproduce within the tolerance band on any host, while wall-time
// and heap measurements are recorded for trending but never gate CI.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"
)

// benchSchema versions the JSON layout; bump on incompatible change.
const benchSchema = 1

// BenchValue is one measured number.
type BenchValue struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// Deterministic marks values that reproduce exactly for the same
	// seed (virtual-clock time, event counts) as opposed to wall-clock
	// timings and heap sizes, which vary with the host.
	Deterministic bool `json:"deterministic"`
}

// BenchResult groups the values of one experiment.
type BenchResult struct {
	Name   string                `json:"name"`
	Values map[string]BenchValue `json:"values"`
}

// BenchReport is the full -json document.
type BenchReport struct {
	Schema  int           `json:"schema"`
	Results []BenchResult `json:"results"`
}

// add appends one experiment's values, keeping Results sorted by name so
// the emitted JSON is stable.
func (r *BenchReport) add(name string, values map[string]BenchValue) {
	r.Results = append(r.Results, BenchResult{Name: name, Values: values})
	sort.Slice(r.Results, func(i, j int) bool { return r.Results[i].Name < r.Results[j].Name })
}

// result returns the named experiment, or nil.
func (r *BenchReport) result(name string) *BenchResult {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// WriteJSON emits the report with stable formatting.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBenchReport parses a -json document.
func ReadBenchReport(rd io.Reader) (*BenchReport, error) {
	var r BenchReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("mkbench: parse report: %w", err)
	}
	if r.Schema != benchSchema {
		return nil, fmt.Errorf("mkbench: report schema %d, want %d", r.Schema, benchSchema)
	}
	return &r, nil
}

// loadBaseline reads a committed baseline file.
func loadBaseline(path string) (*BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBenchReport(f)
}

// Compare checks current against baseline: every deterministic baseline
// value must exist in current and agree within the fractional tolerance
// band. Experiments absent from current are skipped (the run may cover a
// subset); non-deterministic values are never compared. The returned
// strings describe each regression; empty means the band held.
func Compare(baseline, current *BenchReport, tol float64) []string {
	var regressions []string
	for _, base := range baseline.Results {
		cur := current.result(base.Name)
		if cur == nil {
			continue
		}
		keys := make([]string, 0, len(base.Values))
		for k := range base.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv := base.Values[k]
			if !bv.Deterministic {
				continue
			}
			cv, ok := cur.Values[k]
			if !ok {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s: missing from current report", base.Name, k))
				continue
			}
			if !withinTolerance(bv.Value, cv.Value, tol) {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s: baseline %g%s, got %g%s (tolerance %.1f%%)",
						base.Name, k, bv.Value, bv.Unit, cv.Value, cv.Unit, 100*tol))
			}
		}
	}
	return regressions
}

// withinTolerance reports |cur-base| <= tol*|base|, with an absolute
// epsilon so a zero baseline tolerates only zero.
func withinTolerance(base, cur, tol float64) bool {
	diff := math.Abs(cur - base)
	if diff == 0 {
		return true
	}
	return diff <= tol*math.Abs(base)
}

// det and wall build BenchValues tersely.
func det(v float64, unit string) BenchValue {
	return BenchValue{Value: v, Unit: unit, Deterministic: true}
}
func wall(v float64, unit string) BenchValue { return BenchValue{Value: v, Unit: unit} }

// ms converts a duration for reporting.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// b2f encodes a boolean measurement as 0/1.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
