// Command mkbench regenerates the paper's evaluation tables and ablation
// figures (see DESIGN.md §4 for the experiment index):
//
//	mkbench -table 1           # Table 1: performance vs monolithic
//	mkbench -table 2           # Table 2: memory footprint
//	mkbench -ablation concurrency
//	mkbench -ablation variants # fisheye + power-aware (§5.1)
//	mkbench -ablation dymo     # optimised flooding + multipath (§5.2)
//	mkbench -all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/harness"
)

func main() {
	table := flag.Int("table", 0, "paper table to regenerate (1 or 2)")
	ablation := flag.String("ablation", "", "ablation to run: concurrency, variants, dymo, hybrid")
	all := flag.Bool("all", false, "run everything")
	iters := flag.Int("iters", 2000, "iterations for per-message timing")
	flag.Parse()

	if !*all && *table == 0 && *ablation == "" {
		flag.Usage()
		os.Exit(2)
	}
	run := func(name string, fn func() error) {
		fmt.Printf("== %s ==\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "mkbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *all || *table == 1 {
		run("Table 1", func() error { return table1(*iters) })
	}
	if *all || *table == 2 {
		run("Table 2", table2)
	}
	if *all || *ablation == "concurrency" {
		run("Concurrency models (§4.4)", concurrency)
	}
	if *all || *ablation == "variants" {
		run("OLSR variants (§5.1)", variants)
	}
	if *all || *ablation == "dymo" {
		run("DYMO variants (§5.2)", dymoVariants)
	}
	if *all || *ablation == "hybrid" {
		run("Hybridisation (§7 extension)", hybrid)
	}
}

func hybrid() error {
	r, err := harness.MeasureHybrid(7)
	if err != nil {
		return err
	}
	fmt.Printf("7-node line, one far discovery:\n")
	fmt.Printf("  RREQ re-broadcasts: reactive(DYMO)=%d hybrid(ZRP)=%d\n", r.ReactiveForwards, r.HybridForwards)
	fmt.Printf("  discovery+delivery: reactive=%v hybrid=%v\n",
		r.ReactiveDelay.Round(time.Millisecond), r.HybridDelay.Round(time.Millisecond))
	fmt.Printf("  zone answers=%d; in-zone send triggered %d discoveries (zone is proactive)\n",
		r.ZoneAnswers, r.NearDiscoveries)
	return nil
}

func table1(iters int) error {
	t, err := harness.MeasureTable1(iters)
	if err != nil {
		return err
	}
	t.Print()
	return nil
}

func table2() error {
	t, err := harness.MeasureTable2()
	if err != nil {
		return err
	}
	t.Print()
	return nil
}

func concurrency() error {
	fmt.Printf("%-26s %14s %12s\n", "model", "events/sec", "elapsed")
	for _, m := range []core.Model{core.SingleThreaded, core.PerMessage, core.PerN} {
		r, err := harness.MeasureConcurrency(m, 4, 20000, 3000)
		if err != nil {
			return err
		}
		fmt.Printf("%-26s %14.0f %12s\n", r.Model, r.PerSecond, r.Elapsed.Round(time.Millisecond))
	}
	return nil
}

func variants() error {
	fish, err := harness.MeasureFisheye(16, 4, 60*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("fisheye: TC transmissions over 60s on a 4x4 grid: %d -> %d (%.0f%% reduction)\n",
		fish.BaselineTCTx, fish.FisheyeTCTx, 100*fish.Reduction)

	pw, err := harness.MeasurePowerAware()
	if err != nil {
		return err
	}
	fmt.Printf("power-aware: drained relay selected as MPR: base=%v power-aware=%v\n",
		pw.DrainedSelectedBase, pw.DrainedSelectedPower)
	return nil
}

func dymoVariants() error {
	fl, err := harness.MeasureDYMOFlooding(8)
	if err != nil {
		return err
	}
	fmt.Printf("flooding: RREQ re-broadcasts on an 8-clique: blind=%d gossip(p=0.65)=%d mpr=%d (%.0f%% reduction blind->mpr)\n",
		fl.BlindForwards, fl.GossipForwards, fl.OptimisedForwards, 100*fl.Reduction)

	mp, err := harness.MeasureMultipath()
	if err != nil {
		return err
	}
	fmt.Printf("multipath: route discoveries across diamond link failure: base=%d multipath=%d\n",
		mp.BaseDiscoveries, mp.MultipathDiscoveries)
	return nil
}
