// Command mkbench regenerates the paper's evaluation tables and ablation
// figures (see DESIGN.md §4 for the experiment index):
//
//	mkbench -table 1           # Table 1: performance vs monolithic
//	mkbench -table 2           # Table 2: memory footprint
//	mkbench -ablation concurrency
//	mkbench -ablation variants # fisheye + power-aware (§5.1)
//	mkbench -ablation dymo     # optimised flooding + multipath (§5.2)
//	mkbench -all
//
// With -json the measurements are also written as a machine-readable
// report, and -check compares that report against a committed baseline,
// failing (exit 1) when any deterministic value drifts outside the
// tolerance band:
//
//	mkbench -all -json bench.json
//	mkbench -ablation dymo -check cmd/mkbench/testdata/baseline.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/harness"
)

func main() {
	table := flag.Int("table", 0, "paper table to regenerate (1 or 2)")
	ablation := flag.String("ablation", "", "ablation to run: concurrency, variants, dymo, hybrid, dispatch, scale")
	all := flag.Bool("all", false, "run everything (except the scale ablation, which has its own CI job)")
	iters := flag.Int("iters", 2000, "iterations for per-message timing")
	jsonOut := flag.String("json", "", "also write the measurements to this file as JSON")
	check := flag.String("check", "", "compare this run against a baseline JSON report")
	tolerance := flag.Float64("tolerance", 0.01, "fractional tolerance band for -check")
	minNodesPerSec := flag.Float64("minNodesPerSec", 0, "scale ablation: fail if any cell emulates fewer node·s per wall second")
	minNodesPerSecOLSR := flag.Float64("minNodesPerSecOLSR", 0, "scale ablation: per-protocol floor for the olsr cells, overriding -minNodesPerSec (olsr route recompute used to be the protocol the global floor had to accommodate)")
	maxAllocsPerRx := flag.Float64("maxAllocsPerRx", 0, "scale ablation: fail if any cell exceeds this many heap allocations per delivered frame")
	flag.Parse()

	if !*all && *table == 0 && *ablation == "" {
		flag.Usage()
		os.Exit(2)
	}
	report := &BenchReport{Schema: benchSchema}
	run := func(name string, fn func(*BenchReport) error) {
		fmt.Printf("== %s ==\n", name)
		if err := fn(report); err != nil {
			fmt.Fprintf(os.Stderr, "mkbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *all || *table == 1 {
		run("Table 1", func(r *BenchReport) error { return table1(r, *iters) })
	}
	if *all || *table == 2 {
		run("Table 2", table2)
	}
	if *all || *ablation == "concurrency" {
		run("Concurrency models (§4.4)", concurrency)
	}
	if *all || *ablation == "variants" {
		run("OLSR variants (§5.1)", variants)
	}
	if *all || *ablation == "dymo" {
		run("DYMO variants (§5.2)", dymoVariants)
	}
	if *all || *ablation == "hybrid" {
		run("Hybridisation (§7 extension)", hybrid)
	}
	if *all || *ablation == "dispatch" {
		run("Event dispatch path (§6.1)", dispatch)
	}
	// The scale ablation is not part of -all: the 5k-node cells take long
	// enough that CI runs them as a dedicated job.
	if *ablation == "scale" {
		run("Scale (sharded event core)", func(r *BenchReport) error {
			return scale(r, *minNodesPerSec, *minNodesPerSecOLSR, *maxAllocsPerRx)
		})
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err == nil {
			err = report.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d experiments to %s\n", len(report.Results), *jsonOut)
	}
	if *check != "" {
		baseline, err := loadBaseline(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkbench: %v\n", err)
			os.Exit(1)
		}
		regressions := Compare(baseline, report, *tolerance)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", r)
		}
		if len(regressions) > 0 {
			os.Exit(1)
		}
		fmt.Printf("baseline check passed (%s, tolerance %.1f%%)\n", *check, 100**tolerance)
	}
}

// scale sweeps network size with OLSR and AODV live on every node — the
// thousand-node regime the sharded event core exists for. Frame counts and
// route liveness are deterministic (virtual clock + seeds) and gated by the
// committed BENCH_scale.json baseline; throughput and allocation rate are
// host measurements gated by the absolute -minNodesPerSec / -maxAllocsPerRx
// floors instead of relative comparison. The olsr cells take their own
// floor when -minNodesPerSecOLSR is set: the incremental route recompute
// holds olsr to a much higher throughput than the global floor, and a
// per-protocol gate keeps a regression there from hiding under it.
func scale(rep *BenchReport, minNodesPerSec, minNodesPerSecOLSR, maxAllocsPerRx float64) error {
	var gateErrs []string
	for _, proto := range []string{"olsr", "aodv"} {
		floor := minNodesPerSec
		if proto == "olsr" && minNodesPerSecOLSR > 0 {
			floor = minNodesPerSecOLSR
		}
		for _, n := range []int{100, 1000, 5000} {
			r, err := harness.MeasureScale(harness.ScaleSpec{Protocol: proto, Nodes: n})
			if err != nil {
				return err
			}
			r.Print()
			rep.add(fmt.Sprintf("scale_%s_%d", proto, n), map[string]BenchValue{
				"tx_frames":        det(float64(r.Stats.TxFrames), "frames"),
				"rx_frames":        det(float64(r.Stats.RxFrames), "frames"),
				"rx_bytes":         det(float64(r.Stats.RxBytes), "bytes"),
				"routes":           det(float64(r.Routes), "routes"),
				"node_sec_per_sec": wall(r.NodeSecPerSec, "node·s/s"),
				"allocs_per_rx":    wall(r.AllocsPerRx, "allocs/frame"),
			})
			if floor > 0 && r.NodeSecPerSec < floor {
				gateErrs = append(gateErrs, fmt.Sprintf(
					"scale_%s_%d: %.0f node·s/s below floor %.0f", proto, n, r.NodeSecPerSec, floor))
			}
			if maxAllocsPerRx > 0 && r.AllocsPerRx > maxAllocsPerRx {
				gateErrs = append(gateErrs, fmt.Sprintf(
					"scale_%s_%d: %.2f allocs/rx above ceiling %.2f", proto, n, r.AllocsPerRx, maxAllocsPerRx))
			}
		}
	}
	if len(gateErrs) > 0 {
		for _, e := range gateErrs {
			fmt.Fprintf(os.Stderr, "GATE: %s\n", e)
		}
		return fmt.Errorf("%d scale gate(s) failed", len(gateErrs))
	}
	return nil
}

func hybrid(rep *BenchReport) error {
	r, err := harness.MeasureHybrid(7)
	if err != nil {
		return err
	}
	fmt.Printf("7-node line, one far discovery:\n")
	fmt.Printf("  RREQ re-broadcasts: reactive(DYMO)=%d hybrid(ZRP)=%d\n", r.ReactiveForwards, r.HybridForwards)
	fmt.Printf("  discovery+delivery: reactive=%v hybrid=%v\n",
		r.ReactiveDelay.Round(time.Millisecond), r.HybridDelay.Round(time.Millisecond))
	fmt.Printf("  zone answers=%d; in-zone send triggered %d discoveries (zone is proactive)\n",
		r.ZoneAnswers, r.NearDiscoveries)
	rep.add("hybrid", map[string]BenchValue{
		"reactive_forwards": det(float64(r.ReactiveForwards), "frames"),
		"hybrid_forwards":   det(float64(r.HybridForwards), "frames"),
		"reactive_delay":    det(ms(r.ReactiveDelay), "ms"),
		"hybrid_delay":      det(ms(r.HybridDelay), "ms"),
		"zone_answers":      det(float64(r.ZoneAnswers), "replies"),
		"near_discoveries":  det(float64(r.NearDiscoveries), "discoveries"),
	})
	return nil
}

func dispatch(rep *BenchReport) error {
	d, err := harness.MeasureDispatch()
	if err != nil {
		return err
	}
	d.Print()
	// ns/op is host-dependent (trend only); allocs/op is a property of the
	// code — the RCU dispatch plans keep the steady-state path at exactly
	// zero, and the baseline gate holds it there.
	rep.add("dispatch", map[string]BenchValue{
		"direct_ns_per_op":     wall(d.DirectNs, "ns"),
		"direct_allocs_per_op": det(d.DirectAllocs, "allocs"),
		"chain_ns_per_op":      wall(d.ChainNs, "ns"),
		"chain_allocs_per_op":  det(d.ChainAllocs, "allocs"),
	})
	return nil
}

func table1(rep *BenchReport, iters int) error {
	t, err := harness.MeasureTable1(iters)
	if err != nil {
		return err
	}
	t.Print()
	// Message-processing times are wall clock; route establishment runs
	// on the virtual clock and is deterministic.
	rep.add("table1", map[string]BenchValue{
		"proc_olsr_mono":  wall(ms(t.ProcOLSRMono), "ms"),
		"proc_olsr_kit":   wall(ms(t.ProcOLSRKit), "ms"),
		"proc_dymo_mono":  wall(ms(t.ProcDYMOMono), "ms"),
		"proc_dymo_kit":   wall(ms(t.ProcDYMOKit), "ms"),
		"route_olsr_mono": det(ms(t.RouteOLSRMono), "ms"),
		"route_olsr_kit":  det(ms(t.RouteOLSRKit), "ms"),
		"route_dymo_mono": det(ms(t.RouteDYMOMono), "ms"),
		"route_dymo_kit":  det(ms(t.RouteDYMOKit), "ms"),
	})
	return nil
}

func table2(rep *BenchReport) error {
	t, err := harness.MeasureTable2()
	if err != nil {
		return err
	}
	t.Print()
	rep.add("table2", map[string]BenchValue{
		"mono_olsr":       wall(t.MonoOLSR, "KB"),
		"kit_olsr":        wall(t.KitOLSR, "KB"),
		"mono_dymo":       wall(t.MonoDYMO, "KB"),
		"kit_dymo":        wall(t.KitDYMO, "KB"),
		"mono_both":       wall(t.MonoBoth, "KB"),
		"kit_both":        wall(t.KitBoth, "KB"),
		"kit_both_sealed": wall(t.KitBothSealed, "KB"),
	})
	return nil
}

func concurrency(rep *BenchReport) error {
	fmt.Printf("%-26s %14s %12s\n", "model", "events/sec", "elapsed")
	values := map[string]BenchValue{}
	for _, m := range []core.Model{core.SingleThreaded, core.PerMessage, core.PerN} {
		r, err := harness.MeasureConcurrency(m, 4, 20000, 3000)
		if err != nil {
			return err
		}
		fmt.Printf("%-26s %14.0f %12s\n", r.Model, r.PerSecond, r.Elapsed.Round(time.Millisecond))
		values["events_per_sec_"+r.Model.String()] = wall(r.PerSecond, "events/s")
	}
	rep.add("concurrency", values)
	return nil
}

func variants(rep *BenchReport) error {
	fish, err := harness.MeasureFisheye(16, 4, 60*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("fisheye: TC transmissions over 60s on a 4x4 grid: %d -> %d (%.0f%% reduction)\n",
		fish.BaselineTCTx, fish.FisheyeTCTx, 100*fish.Reduction)

	pw, err := harness.MeasurePowerAware()
	if err != nil {
		return err
	}
	fmt.Printf("power-aware: drained relay selected as MPR: base=%v power-aware=%v\n",
		pw.DrainedSelectedBase, pw.DrainedSelectedPower)
	rep.add("variants", map[string]BenchValue{
		"fisheye_baseline_tc_tx":       det(float64(fish.BaselineTCTx), "frames"),
		"fisheye_tc_tx":                det(float64(fish.FisheyeTCTx), "frames"),
		"power_drained_selected_base":  det(b2f(pw.DrainedSelectedBase), "bool"),
		"power_drained_selected_power": det(b2f(pw.DrainedSelectedPower), "bool"),
	})
	return nil
}

func dymoVariants(rep *BenchReport) error {
	fl, err := harness.MeasureDYMOFlooding(8)
	if err != nil {
		return err
	}
	fmt.Printf("flooding: RREQ re-broadcasts on an 8-clique: blind=%d gossip(p=0.65)=%d mpr=%d (%.0f%% reduction blind->mpr)\n",
		fl.BlindForwards, fl.GossipForwards, fl.OptimisedForwards, 100*fl.Reduction)

	mp, err := harness.MeasureMultipath()
	if err != nil {
		return err
	}
	fmt.Printf("multipath: route discoveries across diamond link failure: base=%d multipath=%d\n",
		mp.BaseDiscoveries, mp.MultipathDiscoveries)
	rep.add("dymo", map[string]BenchValue{
		"blind_forwards":        det(float64(fl.BlindForwards), "frames"),
		"gossip_forwards":       det(float64(fl.GossipForwards), "frames"),
		"mpr_forwards":          det(float64(fl.OptimisedForwards), "frames"),
		"base_discoveries":      det(float64(mp.BaseDiscoveries), "discoveries"),
		"multipath_discoveries": det(float64(mp.MultipathDiscoveries), "discoveries"),
	})
	return nil
}
