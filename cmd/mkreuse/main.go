// Command mkreuse regenerates the paper's code-reuse analysis from this
// repository's own sources: Table 3 (reused generic components per
// protocol composition) and Fig 7 (proportion of reusable code).
//
//	mkreuse            # Table 3 + Fig 7
//	mkreuse -fig 7     # Fig 7 only
//	mkreuse -root DIR  # analyse a different checkout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"manetkit/internal/reuse"
)

func main() {
	fig := flag.Int("fig", 0, "print only the given figure (7)")
	root := flag.String("root", "", "repository root (default: walk up to go.mod)")
	flag.Parse()

	dir := *root
	if dir == "" {
		var err error
		dir, err = findRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkreuse: %v\n", err)
			os.Exit(1)
		}
	}
	report, err := reuse.Analyze(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkreuse: %v\n", err)
		os.Exit(1)
	}
	if *fig == 0 {
		report.PrintTable3()
		fmt.Println()
	}
	report.PrintFig7()
}

func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("go.mod not found above %s", dir)
		}
		dir = parent
	}
}
