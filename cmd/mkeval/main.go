// Command mkeval runs the standing evaluation campaign: deterministic CBR
// and burst traffic swept over a {protocol family} × {density} × {load}
// matrix on the emulated testbed, reporting the network-behaviour metrics
// of the protocol-comparison literature — packet delivery ratio,
// end-to-end latency percentiles and control overhead — with multi-seed
// confidence bands.
//
//	mkeval                                   # default 4×3×2 matrix, 2 seeds
//	mkeval -protos aodv,olsr -seeds 1,2,3    # narrower matrix, more seeds
//	mkeval -json campaign.json               # machine-readable results
//	mkeval -check internal/eval/testdata/golden_campaign.json
//	mkeval -profile /tmp/prof                # per-cell CPU+heap pprof capture
//
// With -profile every cell (all its seeds) runs under a CPU profile and
// snapshots the heap afterwards; the gzipped pprof files land in the given
// directory as <proto>_<density>_<load>.{cpu,heap}.pb.gz, and each cell's
// top-N hot symbols are printed and embedded in the -json report under
// "profile". Profiles are wall-clock artifacts — the behavioural metrics
// and the -check gate remain deterministic and unaffected.
//
// With -check the run is compared against a committed golden report and
// exits 1 when any cell's PDR, overhead or latency drifts past the
// tolerance band, or when any invariant violation occurred — the CI gate
// for regressions in *network* behaviour rather than nanoseconds. Goldens
// are regenerated through the env-gated test flow:
//
//	MANETKIT_UPDATE_GOLDEN=1 go test ./internal/eval -run TestCampaignGolden -update
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"manetkit/internal/eval"
)

func main() {
	protos := flag.String("protos", "", "comma-separated protocol families (default all: olsr,dymo,aodv,zrp)")
	densities := flag.String("densities", "", "comma-separated density regimes (default sparse,medium,dense)")
	loads := flag.String("loads", "", "comma-separated traffic profiles (default cbr,burst)")
	seeds := flag.String("seeds", "", "comma-separated seeds replicating every cell (default 1,2)")
	jsonOut := flag.String("json", "", "also write the campaign report to this file as JSON")
	check := flag.String("check", "", "compare this run against a golden campaign report")
	pdrTol := flag.Float64("pdr-tol", eval.DefaultTolerances().PDRAbs, "absolute PDR drift allowed by -check")
	overheadTol := flag.Float64("overhead-tol", eval.DefaultTolerances().OverheadRel, "relative overhead drift allowed by -check")
	latencyTol := flag.Float64("latency-tol", eval.DefaultTolerances().LatencyRel, "relative p95-latency drift allowed by -check")
	profileDir := flag.String("profile", "", "capture per-cell CPU+heap pprof profiles under this directory")
	profileTop := flag.Int("profile-top", eval.DefaultProfileTopN, "hot symbols kept per profile table")
	flag.Parse()

	cfg := eval.DefaultConfig()
	if *protos != "" {
		cfg.Protos = splitList(*protos)
	}
	if *densities != "" {
		cfg.Densities = splitList(*densities)
	}
	if *loads != "" {
		cfg.Loads = splitList(*loads)
	}
	if *seeds != "" {
		var err error
		if cfg.Seeds, err = parseSeeds(*seeds); err != nil {
			fatal(err)
		}
	}

	cfg.ProfileDir = *profileDir
	cfg.ProfileTopN = *profileTop

	rep, err := eval.Run(cfg)
	if err != nil {
		fatal(err)
	}
	rep.WriteHuman(os.Stdout)
	if *profileDir != "" {
		printProfiles(rep)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err == nil {
			err = rep.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d cells to %s\n", len(rep.Cells), *jsonOut)
	}
	if *check != "" {
		golden, err := eval.LoadReport(*check)
		if err != nil {
			fatal(err)
		}
		tol := eval.Tolerances{PDRAbs: *pdrTol, OverheadRel: *overheadTol, LatencyRel: *latencyTol}
		regressions := eval.Compare(golden, rep, tol)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", r)
		}
		if len(regressions) > 0 {
			os.Exit(1)
		}
		fmt.Printf("golden check passed (%s: pdr ±%.2f, overhead ±%.0f%%, latency ±%.0f%%)\n",
			*check, tol.PDRAbs, 100*tol.OverheadRel, 100*tol.LatencyRel)
	}
}

// printProfiles renders each cell's hot-symbol table after the campaign
// table — the human view of what -profile embedded in the JSON report.
func printProfiles(rep *eval.Report) {
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if c.Profile == nil {
			continue
		}
		fmt.Printf("\nprofile %s (cpu %.1fms sampled, heap %.1fMB inuse):\n",
			c.Key(), float64(c.Profile.CPUTotalNs)/1e6,
			float64(c.Profile.HeapInuseBytes)/(1<<20))
		for _, s := range c.Profile.TopCPU {
			fmt.Printf("  cpu  %6.1f%% %10.1fms  %s\n", 100*s.Share, float64(s.Flat)/1e6, s.Name)
		}
		for _, s := range c.Profile.TopHeap {
			fmt.Printf("  heap %6.1f%% %10.1fKB  %s\n", 100*s.Share, float64(s.Flat)/1024, s.Name)
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, p := range splitList(s) {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("mkeval: bad seed %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mkeval: %v\n", err)
	os.Exit(1)
}
