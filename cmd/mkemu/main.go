// Command mkemu runs an emulated MANET from the command line: it builds a
// topology, deploys the chosen protocol composition on every node, drives
// a traffic workload, and prints per-node statistics — the quickest way to
// watch MANETKit route.
//
//	mkemu -nodes 5 -topology line -proto dymo -duration 30s -traffic 10
//	mkemu -nodes 16 -topology grid -proto olsr -fisheye
//	mkemu -nodes 8 -topology clique -proto both
//
// With -chaos it instead runs a scripted fault scenario (partitions,
// crashes, frame corruption, coordinated reconfiguration) against the
// chosen composition and checks the protocol invariants afterwards:
//
//	mkemu -proto olsr -chaos storm
//	mkemu -proto aodv -chaos crash -seed 42
//
// Observability: -metrics prints the cluster-wide counter/histogram
// snapshot after the run, -trace writes the structured event trace as
// JSONL (byte-identical for the same seed), and -http serves /debug/vars
// (expvar, including the live metric registry) plus /debug/pprof while the
// emulation runs:
//
//	mkemu -proto dymo -metrics -trace trace.jsonl
//	mkemu -proto olsr -duration 5m -http localhost:6060
//
// Introspection: -graph writes the final architecture meta-model (nodes ×
// units × event bindings) as Graphviz DOT, -paths reconstructs the causal
// packet paths (route-discovery flood trees, reply chains, data forwards
// with per-hop latency) from the trace, and -health writes the per-unit
// watchdog report. With -http, the live deployment also serves /graph,
// /health and /paths:
//
//	mkemu -proto aodv -graph arch.dot -paths
//	mkemu -proto olsr -chaos storm -graph arch.dot -health health.txt
//	mkemu -proto dymo -duration 5m -http localhost:6060   # then GET /graph
//
// Streaming telemetry: with -http, the run is also exported live on
// /stream/metrics, /stream/spans, /stream/health, /stream/journal and
// /stream/engine as NDJSON (or SSE with Accept: text/event-stream) —
// `curl -N` watches the deployment reconfigure as it happens. -record
// writes the whole run's flight-recorder dump for post-mortem; -replay
// summarises and fingerprints a dump without running anything:
//
//	mkemu -proto olsr -chaos storm -record flight.ndjson
//	mkemu -replay flight.ndjson
//	mkemu -proto dymo -duration 5m -http localhost:6060   # curl -N localhost:6060/stream/spans
package main

import (
	_ "expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"sync"
	"time"

	"manetkit"
	"manetkit/internal/harness"
	"manetkit/internal/telemetry"
)

// epoch anchors the virtual clock and the trace timestamps.
var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func main() {
	nodes := flag.Int("nodes", 5, "number of nodes")
	topology := flag.String("topology", "line", "line, grid, clique or random")
	proto := flag.String("proto", "dymo", "olsr, dymo, aodv, zrp or both (olsr+dymo)")
	duration := flag.Duration("duration", 30*time.Second, "simulated run time")
	traffic := flag.Int("traffic", 5, "data packets from node 1 to node N")
	fisheye := flag.Bool("fisheye", false, "enable the fisheye OLSR variant")
	multipath := flag.Bool("multipath", false, "enable the multipath DYMO variant")
	mobility := flag.Bool("mobility", false, "mid-run, the last node walks out of range and back")
	seed := flag.Int64("seed", 1, "emulation seed")
	loss := flag.Float64("loss", 0, "per-link frame loss probability")
	showMetrics := flag.Bool("metrics", false, "print the metric snapshot after the run")
	traceOut := flag.String("trace", "", "write the structured event trace to this JSONL file")
	httpAddr := flag.String("http", "", "serve /debug/vars and /debug/pprof on this address during the run")
	chaos := flag.String("chaos", "", "run a fault scenario instead of the traffic workload: "+
		strings.Join(harness.Scenarios(), ", "))
	graphOut := flag.String("graph", "", "write the final architecture meta-model as Graphviz DOT to this file")
	showPaths := flag.Bool("paths", false, "reconstruct and print the causal packet paths after the run (implies tracing)")
	healthOut := flag.String("health", "", "write the final per-unit health report to this file")
	recordOut := flag.String("record", "", "write the telemetry flight-recorder dump (NDJSON) to this file after the run")
	replayIn := flag.String("replay", "", "summarise and fingerprint a flight-recorder dump, then exit (no emulation)")
	sample := flag.Duration("sample", time.Second, "metrics-delta sampling interval on the virtual clock (with -record or -http)")
	flag.Parse()

	if *replayIn != "" {
		if err := replayDump(*replayIn); err != nil {
			fmt.Fprintf(os.Stderr, "mkemu: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var tracer *manetkit.Tracer
	if *traceOut != "" || *showPaths {
		tracer = manetkit.NewTracer(epoch, 0)
	}
	// The telemetry bus carries the live /stream/* endpoints and the
	// flight recorder. Spans can only stream if a tracer exists, so a bus
	// implies one.
	var bus *telemetry.Bus
	if *recordOut != "" || *httpAddr != "" {
		bus = telemetry.New(telemetry.Config{Epoch: epoch})
		if tracer == nil {
			tracer = manetkit.NewTracer(epoch, 0)
		}
	}
	insp := introspection{graphOut: *graphOut, healthOut: *healthOut, showPaths: *showPaths}
	if *httpAddr != "" {
		telemetry.RegisterStreamHandlers(http.DefaultServeMux, bus)
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "mkemu: http: %v\n", err)
			}
		}()
	}

	var err error
	if *chaos != "" {
		err = runChaos(*proto, *chaos, *nodes, *seed, *traffic, *showMetrics, tracer, bus, insp)
	} else {
		err = run(*nodes, *topology, *proto, *duration, *traffic,
			*fisheye, *multipath, *mobility, *seed, *loss, *showMetrics, *httpAddr != "",
			tracer, bus, *sample, insp)
	}
	// Close the bus first so every /stream/* consumer sees a clean end of
	// stream, then snapshot the recorder.
	bus.Close()
	if err == nil && bus != nil && *recordOut != "" {
		err = writeDump(bus, *recordOut)
	}
	if err == nil && tracer != nil && *traceOut != "" {
		err = writeTrace(tracer, *traceOut)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkemu: %v\n", err)
		os.Exit(1)
	}
}

// introspection collects the -graph / -health / -paths outputs.
type introspection struct {
	graphOut  string
	healthOut string
	showPaths bool
}

// writeFile writes one introspection artifact and logs where it went.
func writeFile(path, kind, content string) error {
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s:  %s\n", kind, path)
	return nil
}

// printPaths renders the reconstructed causal packet paths from the trace.
func printPaths(tracer *manetkit.Tracer) {
	paths := manetkit.CorrelatePaths(tracer.Spans())
	fmt.Printf("paths:   %d correlated messages\n", len(paths))
	fmt.Print(manetkit.RenderPacketPaths(paths, 20))
}

// writeTrace dumps the recorded spans as JSONL and prints the trace
// fingerprint (stable across runs with the same seed).
func writeTrace(tracer *manetkit.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace:   %d spans -> %s (fingerprint %s, %d evicted)\n",
		tracer.Len(), path, tracer.Fingerprint(), tracer.Dropped())
	return nil
}

// writeDump writes the flight recorder as NDJSON and prints its stable
// fingerprint — byte-identical for the same seed at any GOMAXPROCS.
func writeDump(bus *telemetry.Bus, path string) error {
	events := bus.Events()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteEvents(f, events); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("record:  %d events -> %s (fingerprint %s, %d evicted)\n",
		len(events), path, telemetry.FingerprintEvents(events), bus.Evicted())
	return nil
}

// replayDump reads a flight-recorder dump back and prints its per-stream
// summary and fingerprint — the post-mortem entry point.
func replayDump(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := telemetry.ReadEvents(f)
	if err != nil {
		return err
	}
	fmt.Printf("replay:  %s\n%s", path, telemetry.Summarize(events).String())
	fmt.Printf("fingerprint: %s\n", telemetry.FingerprintEvents(events))
	return nil
}

// runChaos executes one scripted fault scenario and reports whether the
// protocol invariants held. Violations exit non-zero.
func runChaos(proto, scenario string, nodes int, seed int64, traffic int,
	showMetrics bool, tracer *manetkit.Tracer, bus *telemetry.Bus, insp introspection) error {
	report, err := harness.RunChaos(harness.ChaosConfig{
		Proto:     proto,
		Scenario:  scenario,
		Nodes:     nodes,
		Seed:      seed,
		Traffic:   traffic,
		Tracer:    tracer,
		Telemetry: bus,
	})
	if err != nil {
		return err
	}
	fmt.Print(report.Summary())
	_ = showMetrics // chaos summaries always include the metric snapshot
	if n := len(report.Journal); n > 0 {
		fmt.Printf("journal: %d reconfigurations recorded\n", n)
	}
	if insp.graphOut != "" {
		if err := writeFile(insp.graphOut, "graph", report.Arch.DOT()); err != nil {
			return err
		}
	}
	if insp.healthOut != "" {
		if err := writeFile(insp.healthOut, "health", report.Health.String()); err != nil {
			return err
		}
	}
	if insp.showPaths && tracer != nil {
		printPaths(tracer)
	}
	if !report.OK() {
		return fmt.Errorf("%d invariant violations", len(report.Violations)+len(report.SeqViolations))
	}
	return nil
}

func run(nodes int, topology, proto string, duration time.Duration, traffic int,
	fisheye, multipath, mobility bool, seed int64, loss float64,
	showMetrics, serveHTTP bool, tracer *manetkit.Tracer, bus *telemetry.Bus,
	sample time.Duration, insp introspection) error {
	if nodes < 2 {
		return fmt.Errorf("need at least 2 nodes")
	}
	clk := manetkit.NewVirtualClock(epoch)
	net := manetkit.NewNetwork(clk, seed)
	var reg *manetkit.MetricsRegistry
	if showMetrics || serveHTTP || bus != nil {
		reg = manetkit.NewMetricsRegistry()
		net.SetMetrics(reg)
		if serveHTTP {
			reg.PublishExpvar("manetkit")
		}
	}
	if tracer != nil {
		net.SetTracer(tracer)
		if reg != nil {
			tracer.SetDropHook(reg.Counter("trace_dropped_total").Inc)
		}
	}
	if bus != nil {
		telemetry.AttachEngine(bus, net)
		telemetry.AttachTracer(bus, tracer)
	}
	addrs := manetkit.Addrs(nodes)
	journal := manetkit.NewRewireJournal(epoch)
	stacks, err := manetkit.NewStacks(net, addrs, manetkit.StackOptions{
		Metrics: reg, Tracer: tracer, Journal: journal,
	})
	if err != nil {
		return err
	}
	defer func() {
		for _, s := range stacks {
			s.Close()
		}
	}()

	q := manetkit.DefaultQuality()
	q.Loss = loss
	switch topology {
	case "line":
		err = manetkit.BuildLine(net, addrs, q)
	case "grid":
		cols := 1
		for cols*cols < nodes {
			cols++
		}
		err = manetkit.BuildGrid(net, addrs, cols, q)
	case "clique":
		err = manetkit.BuildClique(net, addrs, q)
	case "random":
		err = fmt.Errorf("random topology: use the library API (emunet.BuildRandom)")
	default:
		err = fmt.Errorf("unknown topology %q", topology)
	}
	if err != nil {
		return err
	}

	for _, s := range stacks {
		if proto == "olsr" || proto == "both" {
			if _, err := s.DeployOLSR(manetkit.OLSRConfig{}); err != nil {
				return err
			}
			if fisheye {
				if err := s.EnableFisheye(nil); err != nil {
					return err
				}
			}
		}
		if proto == "dymo" || proto == "both" {
			d, err := s.DeployDYMO(manetkit.DYMOConfig{HopLimit: uint8(nodes + 2)})
			if err != nil {
				return err
			}
			if multipath {
				if err := d.EnableMultipath(2); err != nil {
					return err
				}
			}
		}
		if proto == "aodv" {
			if _, err := s.DeployAODV(manetkit.AODVConfig{PiggybackRoutes: true}); err != nil {
				return err
			}
		}
		if proto == "zrp" {
			if _, err := s.DeployZRP(manetkit.ZRPConfig{}); err != nil {
				return err
			}
		}
	}
	fmt.Printf("deployed %s on %d nodes (%s topology)\n", proto, nodes, topology)

	monitor := manetkit.NewHealthMonitor(epoch, reg, manetkit.HealthConfig{})
	for _, s := range stacks {
		monitor.Watch(manetkit.HealthTarget{Mgr: s.Manager(), Tables: s.RouteTables()})
	}
	if bus != nil {
		telemetry.AttachJournal(bus, journal)
		telemetry.AttachHealth(bus, monitor)
		sampler := telemetry.NewSampler(bus, reg, clk, sample)
		sampler.Start()
		defer func() {
			sampler.SampleNow() // cover the tail of the run
			sampler.Stop()
		}()
		// Health checks every 5 virtual seconds drive the health stream
		// (and give the streaming endpoint its transition timeline).
		var healthTick func()
		healthTick = func() {
			monitor.Check(clk.Now())
			clk.AfterFunc(5*time.Second, healthTick)
		}
		clk.AfterFunc(5*time.Second, healthTick)
	}
	if serveHTTP {
		// Live introspection endpoints next to /debug/vars and /debug/pprof.
		// Every underlying accessor is mutex-guarded, so serving while the
		// emulation advances is safe (the virtual clock keeps running).
		http.HandleFunc("/graph", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, manetkit.CaptureArch(stacks...).DOT())
		})
		http.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, monitor.Check(clk.Now()).String())
		})
		http.HandleFunc("/paths", func(w http.ResponseWriter, r *http.Request) {
			if tracer == nil {
				http.Error(w, "tracing disabled: run mkemu with -trace or -paths", http.StatusNotFound)
				return
			}
			fmt.Fprint(w, manetkit.RenderPacketPaths(manetkit.CorrelatePaths(tracer.Spans()), 50))
		})
	}

	if mobility {
		// The last node drifts out of range a third into the run and comes
		// back two thirds in — the MobiEmu-style scripted trace.
		roam := addrs[nodes-1]
		saved := net.Neighbors(roam)
		net.ScheduleAt(duration/3, func(n *manetkit.Network) {
			for _, nb := range saved {
				n.CutLink(roam, nb)
			}
			fmt.Printf("[mobility] %v walked out of range\n", roam)
		})
		net.ScheduleAt(2*duration/3, func(n *manetkit.Network) {
			for _, nb := range saved {
				_ = n.SetLink(roam, nb, q)
			}
			fmt.Printf("[mobility] %v came back into range\n", roam)
		})
	}

	var mu sync.Mutex
	delivered := 0
	stacks[nodes-1].OnDeliver(func(src manetkit.Addr, payload []byte) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})

	// Warm-up, then traffic from node 1 to node N spread across the rest
	// of the run (with -mobility, some packets fall into the out-of-range
	// window and exercise the repair path).
	warm := duration / 6
	clk.Advance(warm)
	gap := (duration - warm - duration/6) / time.Duration(max(traffic, 1))
	for i := 0; i < traffic; i++ {
		if err := stacks[0].SendData(addrs[nodes-1], []byte(fmt.Sprintf("packet-%d", i))); err != nil {
			return err
		}
		clk.Advance(gap)
	}
	clk.Advance(duration / 6)

	mu.Lock()
	got := delivered
	mu.Unlock()
	fmt.Printf("traffic: %d/%d data packets delivered end-to-end\n", got, traffic)

	st := net.Stats()
	fmt.Printf("medium:  %d frames tx, %d rx, %d lost, %d no-link\n",
		st.TxFrames, st.RxFrames, st.DroppedLoss, st.DroppedNoLink)
	for i, s := range stacks {
		sys := s.System().Stats()
		line := fmt.Sprintf("node %-2d %v  ctrl tx/rx %d/%d  data fwd %d",
			i+1, s.Addr(), sys.CtrlSent, sys.CtrlReceived, sys.DataForwarded)
		if o := s.OLSRUnit(); o != nil {
			line += fmt.Sprintf("  olsr-routes %d", o.Routes().ValidCount())
		}
		if d := s.DYMOUnit(); d != nil {
			dst := d.State().Stats()
			line += fmt.Sprintf("  dymo-routes %d (discoveries %d)", d.Routes().ValidCount(), dst.Discoveries)
		}
		if a := s.AODVUnit(); a != nil {
			ast := a.State().Stats()
			line += fmt.Sprintf("  aodv-routes %d (discoveries %d, ring-expansions %d, gratuitous %d)",
				a.Routes().ValidCount(), ast.Discoveries, ast.RingExpansions, ast.GratuitousRREPs)
		}
		if z := s.ZRPUnit(); z != nil {
			zst := z.State().Stats()
			line += fmt.Sprintf("  zrp-routes %d (intrazone-hits %d, discoveries %d, zone-answers %d)",
				z.Routes().ValidCount(), zst.IntrazoneHits, zst.Discoveries, zst.ZoneAnswers)
		}
		fmt.Println(line)
	}
	if showMetrics && reg != nil {
		fmt.Println("metrics:")
		if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if n := journal.Len(); n > 0 {
		fmt.Printf("journal: %d reconfigurations recorded\n", n)
	}
	if insp.graphOut != "" {
		if err := writeFile(insp.graphOut, "graph", manetkit.CaptureArch(stacks...).DOT()); err != nil {
			return err
		}
	}
	if insp.healthOut != "" {
		if err := writeFile(insp.healthOut, "health", monitor.Check(clk.Now()).String()); err != nil {
			return err
		}
	}
	if insp.showPaths && tracer != nil {
		printPaths(tracer)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
