// Protocol tests: drive the built mkvet binary through the real
// `go vet -vettool` protocol over scratch modules, asserting the three
// contracts cmd/go relies on — fact files round-trip across package
// boundaries via VetxOutput/PackageVetx, the -V=full cache key is stable,
// and diagnostic output is deterministically ordered.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var toolPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "mkvet-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	toolPath = filepath.Join(dir, "mkvet")
	build := exec.Command("go", "build", "-o", toolPath, ".")
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building mkvet: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// writeScratchModule materializes a throwaway module in a temp dir.
func writeScratchModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runVet runs `go vet -vettool=mkvet <patterns>` inside dir.
func runVet(t *testing.T, dir string, patterns ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + toolPath}, patterns...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func runTool(t *testing.T, args ...string) string {
	t.Helper()
	out, err := exec.Command(toolPath, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("mkvet %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// TestFlagsHandshake: cmd/go probes the tool's analyzer flags first.
func TestFlagsHandshake(t *testing.T) {
	if got := strings.TrimSpace(runTool(t, "-flags")); got != "[]" {
		t.Fatalf("mkvet -flags = %q, want []", got)
	}
}

// TestVersionCacheKeyStable: the -V=full line feeds the vet result cache key,
// so it must be identical across invocations of the same binary and change
// shape only with the documented format.
func TestVersionCacheKeyStable(t *testing.T) {
	first := runTool(t, "-V=full")
	second := runTool(t, "-V=full")
	if first != second {
		t.Fatalf("-V=full unstable across runs:\n%q\n%q", first, second)
	}
	re := regexp.MustCompile(`^mkvet version devel buildID=[0-9a-f]{24}\n$`)
	if !re.MatchString(first) {
		t.Fatalf("-V=full = %q, want match for %s", first, re)
	}
}

// TestCrossPackageFactsViaVetx is the round-trip test for the fact protocol:
// a scratch module whose app package only violates invariants through
// helpers in a sibling package. The diagnostics below exist only if lib's
// summaries were serialized to its VetxOutput file and read back through
// app's PackageVetx map by a separate tool process.
func TestCrossPackageFactsViaVetx(t *testing.T) {
	dir := writeScratchModule(t, map[string]string{
		"go.mod": "module factprobe\n\ngo 1.22\n",
		// core mirrors just enough of manetkit/internal/core for the lockemit
		// surface (matched by package base name).
		"core/core.go": `package core

import "sync"

type Event struct{ Type string }

type TicketMutex struct{ mu sync.Mutex }

func (t *TicketMutex) Lock()   { t.mu.Lock() }
func (t *TicketMutex) Unlock() { t.mu.Unlock() }

type Protocol struct{ section TicketMutex }

func (p *Protocol) Section() *TicketMutex { return &p.section }

type Env struct{}

func (e *Env) Emit(from string, ev *Event) {}
`,
		"lib/lib.go": `package lib

import "factprobe/core"

func Notify(e *core.Env, ev *core.Event) {
	e.Emit("notify", ev)
}

func Grow(buf []byte, n int) []byte {
	extra := make([]byte, n)
	return append(buf, extra...)
}
`,
		"app/app.go": `package app

import (
	"factprobe/core"
	"factprobe/lib"
)

func NotifyLocked(p *core.Protocol, e *core.Env, ev *core.Event) {
	sec := p.Section()
	sec.Lock()
	defer sec.Unlock()
	lib.Notify(e, ev)
}

//mk:hotpath
func HotGrow(buf []byte) []byte {
	return lib.Grow(buf, 16)
}
`,
	})
	out, err := runVet(t, dir, "./...")
	if err == nil {
		t.Fatalf("go vet succeeded, want exit 2 with diagnostics:\n%s", out)
	}
	for _, want := range []string{
		"call to lib.Notify while holding sec reaches (core.Env).Emit (call chain: lib.Notify -> (core.Env).Emit)",
		"call to lib.Grow in //mk:hotpath HotGrow reaches make (call chain: lib.Grow -> make)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vet output missing %q:\n%s", want, out)
		}
	}
	// The helpers themselves are clean: no lock is held in lib, nothing there
	// is hot, so every diagnostic must anchor in app.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, ".go:") && !strings.Contains(line, filepath.Join("app", "app.go")) {
			t.Errorf("diagnostic outside app package: %q", line)
		}
	}
}

// TestDiagnosticOrderDeterministic: diagnostics must come out sorted by
// (file, line, column) and be byte-identical across runs — cmd/go caches and
// replays tool output, so nondeterministic ordering would churn the cache
// and produce flaky CI diffs.
func TestDiagnosticOrderDeterministic(t *testing.T) {
	dir := writeScratchModule(t, map[string]string{
		"go.mod": "module orderprobe\n\ngo 1.22\n",
		"a.go": `package orderprobe

//mk:hotpath
func HotA() []int { return make([]int, 4) }

//mk:hotpath
func HotA2() []int { return []int{1} }
`,
		"b.go": `package orderprobe

//mk:hotpath
func HotB() *int { return new(int) }
`,
	})
	first, err := runVet(t, dir, ".")
	if err == nil {
		t.Fatalf("go vet succeeded, want diagnostics:\n%s", first)
	}
	second, err := runVet(t, dir, ".")
	if err == nil {
		t.Fatalf("go vet succeeded on rerun, want diagnostics:\n%s", second)
	}
	if diag(first) != diag(second) {
		t.Errorf("diagnostic output differs across runs:\n--- first\n%s\n--- second\n%s", first, second)
	}
	var positions []string
	for _, line := range strings.Split(first, "\n") {
		if i := strings.Index(line, ".go:"); i >= 0 {
			positions = append(positions, line[:i+len(".go:")]+lineNo(line[i+len(".go:"):]))
		}
	}
	want := []string{"a.go:4", "a.go:7", "b.go:4"}
	if len(positions) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d", len(positions), positions, len(want))
	}
	for i, w := range want {
		if !strings.HasSuffix(positions[i], w) {
			t.Errorf("diagnostic %d at %q, want suffix %q (order must be sorted by file then line)", i, positions[i], w)
		}
	}
}

// diag filters a go vet output down to the diagnostic lines (dropping the
// "# pkg" headers and exit-status noise).
func diag(out string) string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, ".go:") {
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n")
}

// lineNo returns the leading digits of s.
func lineNo(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return s[:i]
		}
	}
	return s
}
