// mkvet runs MANETKit's invariant analyzers (internal/analysis) over Go
// packages. It speaks cmd/go's vettool protocol, so the canonical invocation
// is the one CI uses:
//
//	go build -o mkvet ./cmd/mkvet
//	go vet -vettool=$(pwd)/mkvet ./...
//
// For convenience it also accepts package patterns directly — `mkvet ./...`
// re-executes itself through `go vet -vettool`, which supplies per-package
// type information via export data.
//
// Protocol notes (matching cmd/go/internal/work):
//
//   - `mkvet -flags` prints the tool's analyzer flags as JSON (none: "[]").
//   - `mkvet -V=full` prints a "name version fingerprint" line that cmd/go
//     folds into the vet cache key; we hash the executable so rebuilding the
//     tool invalidates cached results.
//   - otherwise the single argument is a vet.cfg JSON file describing one
//     package: its Go files, an ImportMap from source import paths to
//     canonical ones, and a PackageFile map to gc export data for every
//     dependency. The tool must write the (possibly empty) facts file named
//     by VetxOutput even for packages it does not analyze.
//
// Diagnostics go to stderr as file:line:col lines; any finding exits 2,
// which go vet surfaces as a failure.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"manetkit/internal/analysis"
)

// modulePrefix is the fallback package filter when cmd/go supplies no
// ModulePath; dependencies (including the stdlib packages go vet also feeds
// through the tool) are type-checked by their exporters, not re-analyzed here.
const modulePrefix = "manetkit"

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]")
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(unitcheck(args[0]))
	default:
		os.Exit(standalone(args))
	}
}

// printVersion emits the cache-key line cmd/go parses from `tool -V=full`.
func printVersion() {
	fp := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				fp = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("mkvet version devel buildID=%s\n", fp)
}

// standalone re-execs through `go vet -vettool=<self>` so cmd/go computes
// the build graph and export data for us.
func standalone(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkvet: cannot locate own executable: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "mkvet: go vet: %v\n", err)
		return 1
	}
	return 0
}

// vetConfig mirrors the JSON cmd/go writes for each package it vets.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
	GoVersion                 string
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkvet: reading %s: %v\n", cfgPath, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mkvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go requires the facts file regardless of whether we analyze; write
	// an empty set up front so every early return leaves a valid file, then
	// overwrite with the real summaries after analysis.
	if !writeFacts(&cfg, analysis.NewFactSet()) {
		return 1
	}
	if !inModule(&cfg) {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "mkvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.compiler(), cfg.lookup)
	info := analysis.NewInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect via Check's return; keep going past the first
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "mkvet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	imported := importedFacts(&cfg)
	if cfg.VetxOnly {
		// This package is only a dependency of the packages under vet: export
		// its summaries for them, report nothing here.
		writeFacts(&cfg, analysis.ComputeFacts(fset, files, pkg, info, imported))
		return 0
	}
	diags, facts, err := analysis.RunWithFacts(fset, files, pkg, info, analysis.All(), imported)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkvet: %v\n", err)
		return 1
	}
	if !writeFacts(&cfg, facts) {
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// writeFacts serializes a fact set to the VetxOutput path (no-op when cmd/go
// did not request one). Reports success.
func writeFacts(cfg *vetConfig, facts *analysis.FactSet) bool {
	if cfg.VetxOutput == "" {
		return true
	}
	var buf strings.Builder
	if err := analysis.EncodeFacts(&buf, facts); err != nil {
		fmt.Fprintf(os.Stderr, "mkvet: encoding facts: %v\n", err)
		return false
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte(buf.String()), 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "mkvet: writing %s: %v\n", cfg.VetxOutput, err)
		return false
	}
	return true
}

// importedFacts merges the fact files of every dependency cmd/go handed us
// via PackageVetx. Each exported set is cumulative (it carries the exporter's
// transitive facts), so direct imports suffice. Unreadable or legacy files
// degrade to intra-procedural precision, never to a failure.
func importedFacts(cfg *vetConfig) *analysis.FactSet {
	merged := analysis.NewFactSet()
	for _, file := range cfg.PackageVetx {
		f, err := os.Open(file)
		if err != nil {
			continue
		}
		set, err := analysis.DecodeFacts(f)
		f.Close()
		if err != nil {
			continue
		}
		merged.Merge(set)
	}
	return merged
}

// compiler returns the export-data flavor for the importer; cmd/go sets
// Compiler to "gc" in practice, but default defensively.
func (cfg *vetConfig) compiler() string {
	if cfg.Compiler != "" {
		return cfg.Compiler
	}
	return "gc"
}

// lookup feeds dependency export data to the gc importer: the source import
// path goes through ImportMap to its canonical path, which PackageFile maps
// to the compiled export file cmd/go produced.
func (cfg *vetConfig) lookup(path string) (io.ReadCloser, error) {
	if canonical, ok := cfg.ImportMap[path]; ok {
		path = canonical
	}
	file, ok := cfg.PackageFile[path]
	if !ok {
		return nil, fmt.Errorf("mkvet: no export data for %q", path)
	}
	return os.Open(file)
}

// inModule reports whether the package under vet should be analyzed: any
// non-standard package that belongs to a module. In CI that is exactly this
// repository (stdlib dependencies arrive with Standard set or no ModulePath);
// accepting other module paths lets the protocol tests drive the tool over a
// scratch module. Test variants carry ImportPaths like
// "manetkit/internal/core.test" and
// "manetkit/internal/core [manetkit/internal/core.test]", so prefix-match in
// the fallback.
func inModule(cfg *vetConfig) bool {
	if cfg.Standard[cfg.ImportPath] {
		return false
	}
	if cfg.ModulePath != "" {
		return true
	}
	return cfg.ImportPath == modulePrefix || strings.HasPrefix(cfg.ImportPath, modulePrefix+"/")
}
