package manetkit

// Benchmarks regenerating the paper's evaluation (one per table/figure; see
// DESIGN.md §4 for the index):
//
//	BenchmarkTable1TimeToProcess*    — Table 1, row 1 (per-message cost)
//	BenchmarkTable1RouteEstablish*   — Table 1, row 2 (reported via metrics)
//	BenchmarkTable2Footprint         — Table 2 (reported via metrics, KB)
//	BenchmarkConcurrencyModel*       — §4.4 concurrency-model ablation
//	BenchmarkEventRouting            — framework event-path microbenchmark
//
// Absolute numbers differ from the paper's 2009 C/Linux testbed; the
// comparisons (monolithic vs MANETKit, model vs model) carry the result.

import (
	"testing"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/harness"
	"manetkit/internal/mnet"
	"manetkit/internal/mono"
	"manetkit/internal/packetbb"
	"manetkit/internal/vclock"
)

// benchTC builds distinct TC messages like the Table 1 workload.
func benchTC(orig mnet.Addr, i int) *packetbb.Message {
	return &packetbb.Message{
		Type:       packetbb.MsgTC,
		Originator: orig,
		HopLimit:   250,
		SeqNum:     uint16(i + 1),
		TLVs:       []packetbb.TLV{{Type: packetbb.TLVANSN, Value: packetbb.U16(uint16(i + 1))}},
		AddrBlocks: []packetbb.AddrBlock{{Addrs: []mnet.Addr{
			mnet.AddrFrom(0x0a000100 + uint32(i%3)),
			mnet.AddrFrom(0x0a000200 + uint32(i%5)),
		}}},
	}
}

func BenchmarkTable1TimeToProcessOLSRKit(b *testing.B) {
	c, nodes, err := harness.OLSRCluster(1)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	peer := mnet.AddrFrom(0x0a0000fe)
	nodes[0].MPR.State().Links.Observe(peer, true, 3, nil, c.Clock.Now())
	unit := nodes[0].OLSR.Protocol()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := &event.Event{Type: event.TCIn, Msg: benchTC(peer, i), Src: peer, Time: c.Clock.Now()}
		sec := unit.Section()
		sec.Lock()
		if err := unit.Accept(ev); err != nil {
			sec.Unlock()
			b.Fatal(err)
		}
		sec.Unlock()
	}
}

func BenchmarkTable1TimeToProcessOLSRMono(b *testing.B) {
	clk := vclock.NewVirtual(epoch)
	net := NewNetwork(clk, 1)
	nic, err := net.Attach(mnet.AddrFrom(0x0a000001))
	if err != nil {
		b.Fatal(err)
	}
	o := mono.NewOLSR(nic, clk, mono.OLSRConfig{})
	peer := mnet.AddrFrom(0x0a0000fe)
	hello := &packetbb.Message{
		Type:       packetbb.MsgHello,
		Originator: peer,
		AddrBlocks: []packetbb.AddrBlock{{
			Addrs: []mnet.Addr{mnet.AddrFrom(0x0a000001)},
			TLVs: []packetbb.AddrTLV{{
				Type: packetbb.ATLVLinkStatus, Value: packetbb.U8(packetbb.LinkStatusSymmetric),
			}},
		}},
	}
	o.HandleHello(hello, peer)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.HandleTC(benchTC(peer, i), peer)
	}
}

func benchRREQ(orig, target mnet.Addr, i int) *packetbb.Message {
	return &packetbb.Message{
		Type:       packetbb.MsgRREQ,
		Originator: orig,
		SeqNum:     uint16(i + 1),
		HopLimit:   10,
		HopCount:   2,
		AddrBlocks: []packetbb.AddrBlock{{Addrs: []mnet.Addr{target}}},
	}
}

func BenchmarkTable1TimeToProcessDYMOKit(b *testing.B) {
	c, nodes, err := harness.DYMOCluster(1)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	orig := mnet.AddrFrom(0x0a0000fe)
	target := mnet.AddrFrom(0x0a0000fd)
	unit := nodes[0].DYMO.Protocol()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := &event.Event{Type: event.REIn, Msg: benchRREQ(orig, target, i), Src: orig, Time: c.Clock.Now()}
		sec := unit.Section()
		sec.Lock()
		if err := unit.Accept(ev); err != nil {
			sec.Unlock()
			b.Fatal(err)
		}
		sec.Unlock()
	}
}

func BenchmarkTable1TimeToProcessDYMOMono(b *testing.B) {
	clk := vclock.NewVirtual(epoch)
	net := NewNetwork(clk, 1)
	nic, err := net.Attach(mnet.AddrFrom(0x0a000001))
	if err != nil {
		b.Fatal(err)
	}
	d := mono.NewDYMO(nic, clk, mono.DYMOConfig{})
	orig := mnet.AddrFrom(0x0a0000fe)
	target := mnet.AddrFrom(0x0a0000fd)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.HandleRREQ(benchRREQ(orig, target, i), orig)
	}
}

// BenchmarkExtensionProcessAODVRREQ extends the Table 1 row to the AODV
// composition (intermediate-node RREQ processing).
func BenchmarkExtensionProcessAODVRREQ(b *testing.B) {
	clk := vclock.NewVirtual(epoch)
	net := NewNetwork(clk, 1)
	stack, err := NewStack(net, mnet.AddrFrom(0x0a000001), StackOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer stack.Close()
	a, err := stack.DeployAODV(AODVConfig{})
	if err != nil {
		b.Fatal(err)
	}
	orig := mnet.AddrFrom(0x0a0000fe)
	target := mnet.AddrFrom(0x0a0000fd)
	unit := a.Protocol()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := &event.Event{Type: event.REIn, Msg: benchRREQ(orig, target, i), Src: orig, Time: clk.Now()}
		sec := unit.Section()
		sec.Lock()
		if err := unit.Accept(ev); err != nil {
			sec.Unlock()
			b.Fatal(err)
		}
		sec.Unlock()
	}
}

// Route establishment and footprint are scenario measurements rather than
// tight loops; they are reported through benchmark metrics so `go test
// -bench` regenerates the whole of Tables 1 and 2.

func BenchmarkTable1RouteEstablishment(b *testing.B) {
	type probe struct {
		name string
		fn   func() (time.Duration, error)
	}
	for _, p := range []probe{
		{"olsr-mono-ms", harness.RouteEstablishmentOLSRMono},
		{"olsr-mkit-ms", harness.RouteEstablishmentOLSRKit},
		{"dymo-mono-ms", harness.RouteEstablishmentDYMOMono},
		{"dymo-mkit-ms", harness.RouteEstablishmentDYMOKit},
	} {
		var total time.Duration
		for i := 0; i < b.N; i++ {
			d, err := p.fn()
			if err != nil {
				b.Fatal(err)
			}
			total += d
		}
		b.ReportMetric(float64(total)/float64(b.N)/float64(time.Millisecond), p.name)
	}
}

func BenchmarkTable2Footprint(b *testing.B) {
	var t harness.Table2
	var err error
	for i := 0; i < b.N; i++ {
		t, err = harness.MeasureTable2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(t.MonoOLSR, "mono-olsr-KB")
	b.ReportMetric(t.KitOLSR, "mkit-olsr-KB")
	b.ReportMetric(t.MonoDYMO, "mono-dymo-KB")
	b.ReportMetric(t.KitDYMO, "mkit-dymo-KB")
	b.ReportMetric(t.MonoBoth, "mono-both-KB")
	b.ReportMetric(t.KitBoth, "mkit-both-KB")
	b.ReportMetric(t.KitBothSealed, "mkit-both-sealed-KB")
}

func benchmarkConcurrency(b *testing.B, model core.Model) {
	r, err := harness.MeasureConcurrency(model, 3, b.N+1, 2000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r.PerSecond, "events/s")
}

func BenchmarkConcurrencyModelSingleThreaded(b *testing.B) {
	benchmarkConcurrency(b, core.SingleThreaded)
}
func BenchmarkConcurrencyModelPerMessage(b *testing.B) { benchmarkConcurrency(b, core.PerMessage) }
func BenchmarkConcurrencyModelPerN(b *testing.B)       { benchmarkConcurrency(b, core.PerN) }

// BenchmarkEventRouting measures the bare framework event path: one
// provider, one requirer, no protocol work.
func BenchmarkEventRouting(b *testing.B) {
	mgr, err := core.NewManager(core.Config{
		Node:  mnet.AddrFrom(0x0a000001),
		Clock: vclock.NewVirtual(epoch),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	src := core.NewProtocol("src")
	src.SetTuple(event.Tuple{Provided: []event.Type{event.HelloIn}})
	sink := core.NewProtocol("sink")
	sink.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.HelloIn}}})
	sink.AddHandler(core.NewHandler("h", event.HelloIn, func(*core.Context, *event.Event) error { return nil }))
	if err := mgr.Deploy(src); err != nil {
		b.Fatal(err)
	}
	if err := mgr.Deploy(sink); err != nil {
		b.Fatal(err)
	}
	ev := &event.Event{Type: event.HelloIn}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Emit(ev); err != nil {
			b.Fatal(err)
		}
	}
}
