package manetkit

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func lineStacks(t *testing.T, n int) (*VirtualClock, *Network, []*Stack) {
	t.Helper()
	clk := NewVirtualClock(epoch)
	net := NewNetwork(clk, 1)
	stacks, err := NewStacks(net, Addrs(n), StackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, s := range stacks {
			s.Close()
		}
	})
	if err := BuildLine(net, Addrs(n), DefaultQuality()); err != nil {
		t.Fatal(err)
	}
	return clk, net, stacks
}

func TestQuickstartDYMO(t *testing.T) {
	clk, _, stacks := lineStacks(t, 5)
	for _, s := range stacks {
		if _, err := s.DeployDYMO(DYMOConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	var got []string
	stacks[4].OnDeliver(func(src Addr, payload []byte) {
		mu.Lock()
		got = append(got, src.String()+":"+string(payload))
		mu.Unlock()
	})
	if err := stacks[0].SendData(stacks[4].Addr(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != "10.0.0.1:hello" {
		t.Fatalf("got %v", got)
	}
}

func TestOLSRDeploymentInstallsRoutes(t *testing.T) {
	clk, _, stacks := lineStacks(t, 3)
	for _, s := range stacks {
		if _, err := s.DeployOLSR(OLSRConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(30 * time.Second)
	if got := stacks[0].OLSRUnit().Routes().ValidCount(); got != 2 {
		t.Fatalf("routes = %d", got)
	}
	// Proactive: data flows without discovery.
	var delivered bool
	stacks[2].OnDeliver(func(Addr, []byte) { delivered = true })
	if err := stacks[0].SendData(stacks[2].Addr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(100 * time.Millisecond)
	if !delivered {
		t.Fatal("data not delivered over OLSR routes")
	}
}

func TestSerialProtocolSwitch(t *testing.T) {
	clk, _, stacks := lineStacks(t, 3)
	for _, s := range stacks {
		if _, err := s.DeployOLSR(OLSRConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(30 * time.Second)
	// Switch every node from OLSR to DYMO at runtime.
	for _, s := range stacks {
		if err := s.UndeployOLSR(); err != nil {
			t.Fatal(err)
		}
		if err := s.UndeployMPR(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.DeployDYMO(DYMOConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	if stacks[0].OLSRUnit() != nil || stacks[0].DYMOUnit() == nil {
		t.Fatal("switch bookkeeping broken")
	}
	var delivered bool
	stacks[2].OnDeliver(func(Addr, []byte) { delivered = true })
	if err := stacks[0].SendData(stacks[2].Addr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if !delivered {
		t.Fatal("data not delivered after protocol switch")
	}
}

func TestSimultaneousDeploymentSharesMPR(t *testing.T) {
	clk, _, stacks := lineStacks(t, 3)
	for _, s := range stacks {
		if _, err := s.DeployOLSR(OLSRConfig{}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.DeployDYMO(DYMOConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	// Both protocols run; DYMO shares the MPR CF instead of a private
	// neighbour detector.
	units := stacks[0].Manager().Units()
	hasND := false
	for _, u := range units {
		if u == "neighbor-detection" {
			hasND = true
		}
	}
	if hasND {
		t.Fatalf("co-deployment did not share MPR: %v", units)
	}
	clk.Advance(30 * time.Second)
	if stacks[0].OLSRUnit().Routes().ValidCount() != 2 {
		t.Fatal("OLSR did not converge while co-deployed")
	}
}

func TestFisheyeEnableDisable(t *testing.T) {
	clk, _, stacks := lineStacks(t, 2)
	for _, s := range stacks {
		if _, err := s.DeployOLSR(OLSRConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := stacks[0].EnableFisheye(nil); err != nil {
		t.Fatal(err)
	}
	inter, _ := stacks[0].Manager().Chain("TC_OUT")
	if len(inter) != 1 {
		t.Fatalf("fisheye not interposed: %v", inter)
	}
	if err := stacks[0].DisableFisheye(); err != nil {
		t.Fatal(err)
	}
	inter, _ = stacks[0].Manager().Chain("TC_OUT")
	if len(inter) != 0 {
		t.Fatalf("fisheye not removed: %v", inter)
	}
	clk.Advance(time.Second)
}

func TestAODVDeploymentAndDiscovery(t *testing.T) {
	clk, _, stacks := lineStacks(t, 4)
	for _, s := range stacks {
		if _, err := s.DeployAODV(AODVConfig{PiggybackRoutes: true}); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(3 * time.Second)
	var delivered bool
	stacks[3].OnDeliver(func(Addr, []byte) { delivered = true })
	if err := stacks[0].SendData(stacks[3].Addr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(3 * time.Second) // expanding ring may need one retry
	if !delivered {
		t.Fatal("data not delivered over AODV")
	}
	if stacks[0].AODVUnit().State().Stats().Discoveries != 1 {
		t.Fatalf("stats = %+v", stacks[0].AODVUnit().State().Stats())
	}
	if err := stacks[0].UndeployAODV(); err != nil {
		t.Fatal(err)
	}
	if stacks[0].AODVUnit() != nil {
		t.Fatal("AODV still recorded after undeploy")
	}
}

func TestRestrictToOneReactive(t *testing.T) {
	clk, _, stacks := lineStacks(t, 1)
	_ = clk
	s := stacks[0]
	if err := s.RestrictToOneReactive(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeployDYMO(DYMOConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeployAODV(AODVConfig{}); err == nil {
		t.Fatal("second reactive protocol accepted despite integrity rule")
	}
	if err := s.UndeployDYMO(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeployAODV(AODVConfig{}); err != nil {
		t.Fatalf("AODV rejected after DYMO removal: %v", err)
	}
}

func TestZRPDeployment(t *testing.T) {
	clk, _, stacks := lineStacks(t, 6)
	for _, s := range stacks {
		if _, err := s.DeployZRP(ZRPConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(8 * time.Second)
	// Intrazone (2 hops): proactive, no discovery.
	var nearDelivered bool
	stacks[2].OnDeliver(func(Addr, []byte) { nearDelivered = true })
	stacks[0].SendData(stacks[2].Addr(), []byte("near"))
	clk.Advance(time.Second)
	if !nearDelivered {
		t.Fatal("intrazone delivery failed")
	}
	if stacks[0].ZRPUnit().State().Stats().Discoveries != 0 {
		t.Fatal("intrazone traffic used discovery")
	}
	// Interzone (5 hops): reactive, one discovery.
	var farDelivered bool
	stacks[5].OnDeliver(func(Addr, []byte) { farDelivered = true })
	stacks[0].SendData(stacks[5].Addr(), []byte("far"))
	clk.Advance(2 * time.Second)
	if !farDelivered {
		t.Fatal("interzone delivery failed")
	}
	if stacks[0].ZRPUnit().State().Stats().Discoveries != 1 {
		t.Fatalf("stats = %+v", stacks[0].ZRPUnit().State().Stats())
	}
	if err := stacks[0].UndeployZRP(); err != nil {
		t.Fatal(err)
	}
	if stacks[0].ZRPUnit() != nil {
		t.Fatal("ZRP still recorded after undeploy")
	}
}

func TestPolicyEngineAccessor(t *testing.T) {
	_, _, stacks := lineStacks(t, 1)
	e1 := stacks[0].Policy()
	e2 := stacks[0].Policy()
	if e1 == nil || e1 != e2 {
		t.Fatal("Policy() should lazily create a single engine")
	}
}

func TestSniffFacade(t *testing.T) {
	clk, _, stacks := lineStacks(t, 2)
	var types []EventType
	if _, err := stacks[0].Sniff("tap", func(ev *Event) { types = append(types, ev.Type) }); err != nil {
		t.Fatal(err)
	}
	if _, err := stacks[0].DeployDYMO(DYMOConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := stacks[1].DeployDYMO(DYMOConfig{}); err != nil {
		t.Fatal(err)
	}
	stacks[0].SendData(stacks[1].Addr(), []byte("x"))
	clk.Advance(time.Second)
	if len(types) == 0 {
		t.Fatal("sniffer saw nothing")
	}
}

func TestCoordinateFacade(t *testing.T) {
	clk, _, stacks := lineStacks(t, 3)
	for _, s := range stacks {
		if _, err := s.DeployOLSR(OLSRConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(10 * time.Second)
	// Distributed switch OLSR -> DYMO across the whole network.
	err := Coordinate(stacks, CoordinatedAction{
		Name: "switch-to-dymo",
		Apply: func(s *Stack) error {
			if err := s.UndeployOLSR(); err != nil {
				return err
			}
			if err := s.UndeployMPR(); err != nil {
				return err
			}
			_, err := s.DeployDYMO(DYMOConfig{})
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range stacks {
		if s.OLSRUnit() != nil || s.DYMOUnit() == nil {
			t.Fatalf("stack %d not switched", i)
		}
	}
	// Rollback path: one node vetoes.
	err = Coordinate(stacks, CoordinatedAction{
		Name:    "vetoed",
		Prepare: func(s *Stack) error { return errAlways },
		Apply:   func(s *Stack) error { t.Fatal("apply ran despite veto"); return nil },
	})
	if err == nil {
		t.Fatal("vetoed action committed")
	}
}

var errAlways = fmt.Errorf("always vetoes")

func TestStackErrors(t *testing.T) {
	clk := NewVirtualClock(epoch)
	net := NewNetwork(clk, 1)
	s, err := NewStack(net, MustParseAddr("10.0.0.1"), StackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := NewStack(net, MustParseAddr("10.0.0.1"), StackOptions{}); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	// UndeployMPR while OLSR is stacked fails.
	if _, err := s.DeployOLSR(OLSRConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := s.UndeployMPR(); err == nil {
		t.Fatal("UndeployMPR with OLSR stacked succeeded")
	}
	// Idempotent deploys.
	o1, _ := s.DeployOLSR(OLSRConfig{})
	o2, _ := s.DeployOLSR(OLSRConfig{})
	if o1 != o2 {
		t.Fatal("DeployOLSR not idempotent")
	}
}
